//! Integration tests for the hierarchical tracing layer: parent/child
//! id linkage, cross-thread attribution, Chrome trace structure, and
//! the `stochcdr-obs/2` JSONL round-trip through [`artifact`].
//!
//! The recorder is a process-wide singleton, so everything runs inside
//! one `#[test]` function, sequenced.

use std::sync::{Arc, Mutex};

use stochcdr_obs as obs;
use stochcdr_obs::artifact::{self, Artifact};
use stochcdr_obs::{Record, Sink};

#[derive(Debug, Default)]
struct Captured {
    /// (name, id, parent, tid) per opened span.
    begins: Vec<(String, u64, u64, u64)>,
    /// (path, id, parent, tid) per closed span.
    spans: Vec<(String, u64, u64, u64)>,
}

struct CaptureSink(Arc<Mutex<Captured>>);

impl CaptureSink {
    fn new() -> (Self, Arc<Mutex<Captured>>) {
        let shared = Arc::new(Mutex::new(Captured::default()));
        (CaptureSink(Arc::clone(&shared)), shared)
    }
}

impl Sink for CaptureSink {
    fn record(&mut self, _at_nanos: u64, record: &Record<'_>) {
        let mut cap = self.0.lock().unwrap();
        match record {
            Record::SpanBegin {
                name,
                id,
                parent,
                tid,
                ..
            } => cap.begins.push(((*name).to_string(), *id, *parent, *tid)),
            Record::Span {
                path,
                id,
                parent,
                tid,
                ..
            } => cap.spans.push(((*path).to_string(), *id, *parent, *tid)),
            _ => {}
        }
    }
}

#[test]
fn tracing_layer_end_to_end() {
    nested_spans_link_parent_ids();
    cross_thread_spans_attribute_to_caller();
    chrome_trace_is_balanced_and_multi_lane();
    schema_two_round_trips_through_artifact();
}

fn nested_spans_link_parent_ids() {
    let _ = obs::uninstall();
    let (sink, cap) = CaptureSink::new();
    obs::install(Box::new(sink));
    {
        let _a = obs::span("outer");
        let _b = obs::span("middle");
        let _c = obs::span("inner");
    }
    obs::uninstall();
    let cap = cap.lock().unwrap();

    assert_eq!(cap.begins.len(), 3);
    let (outer, middle, inner) = (&cap.begins[0], &cap.begins[1], &cap.begins[2]);
    assert_eq!(outer.0, "outer");
    assert_eq!(outer.2, 0, "outer span must be a root");
    assert_eq!(middle.2, outer.1, "middle's parent is outer's id");
    assert_eq!(inner.2, middle.1, "inner's parent is middle's id");
    // Ids are unique and all three spans share the opening thread's lane.
    assert_ne!(outer.1, middle.1);
    assert_ne!(middle.1, inner.1);
    assert_eq!(outer.3, middle.3);
    assert_eq!(middle.3, inner.3);
    // Close records carry the same identity as the begin edges.
    let closed_inner = cap.spans.iter().find(|s| s.0.ends_with("inner")).unwrap();
    assert_eq!(closed_inner.1, inner.1);
    assert_eq!(closed_inner.2, middle.1);
}

fn cross_thread_spans_attribute_to_caller() {
    let _ = obs::uninstall();
    let (sink, cap) = CaptureSink::new();
    obs::install(Box::new(sink));
    {
        let _scope = obs::span("scope");
        let parent = obs::current_span_id();
        assert_ne!(parent, 0);
        std::thread::scope(|s| {
            for lane in 1..=2u64 {
                s.spawn(move || {
                    let _lane = obs::lane(lane);
                    let _w = obs::span_child_of("worker", parent);
                });
            }
        });
    }
    obs::uninstall();
    let cap = cap.lock().unwrap();

    let scope = cap.begins.iter().find(|b| b.0 == "scope").unwrap().clone();
    let workers: Vec<_> = cap.begins.iter().filter(|b| b.0 == "worker").collect();
    assert_eq!(workers.len(), 2);
    for w in &workers {
        assert_eq!(w.2, scope.1, "worker parents onto the caller's span");
        assert_ne!(w.3, scope.3, "worker records on its own lane");
    }
    let lanes: std::collections::BTreeSet<u64> = workers.iter().map(|w| w.3).collect();
    assert_eq!(lanes, [1u64, 2].into_iter().collect());
    // Worker spans open on their own thread's stack, but the explicit
    // parent id threads the caller's path through, so the closed record
    // nests under the dispatching span instead of orphaning at the root.
    let closed: Vec<_> = cap.spans.iter().filter(|s| s.0 == "scope/worker").collect();
    assert_eq!(closed.len(), 2);
}

fn chrome_trace_is_balanced_and_multi_lane() {
    let _ = obs::uninstall();
    let buf = Arc::new(Mutex::new(Vec::new()));
    struct SharedBuffer(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuffer {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    obs::install(Box::new(obs::ChromeTraceSink::new(Box::new(SharedBuffer(
        Arc::clone(&buf),
    )))));
    {
        let _root = obs::span("solve");
        let parent = obs::current_span_id();
        obs::counter("cycles", 3);
        std::thread::scope(|s| {
            s.spawn(move || {
                let _lane = obs::lane(1);
                let _w = obs::span_child_of("par.worker", parent);
            });
        });
        obs::gauge("residual", 1e-10);
        obs::event("done", &[("ok", true.into())]);
    }
    obs::uninstall();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let check = artifact::check_trace(&text).expect("trace parses");
    assert_eq!(check.begins, 2);
    assert_eq!(check.ends, 2);
    assert!(check.unbalanced.is_empty(), "{:?}", check.unbalanced);
    assert!(
        check.threads >= 2,
        "expected main + worker lanes, got {}",
        check.threads
    );
    assert_eq!(check.span_counts["par.worker"], 1);
}

fn schema_two_round_trips_through_artifact() {
    let _ = obs::uninstall();
    let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
    obs::install(Box::new(sink));
    {
        let _s = obs::span("solve");
        let _c = obs::span("cycle");
        obs::counter("iters", 7);
        obs::counter("iters", 3);
        obs::gauge("residual", 1.5e-11);
        obs::event("cycle.done", &[("cycle", 1u64.into())]);
        for v in [0.25, 0.24, 0.26, 0.0] {
            obs::histogram("reduction", v);
        }
    }
    obs::uninstall();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    assert!(!artifact::looks_like_trace(&text));
    let art = Artifact::load_jsonl(&text).expect("artifact loads");
    assert_eq!(art.schema, obs::SCHEMA_VERSION);
    assert_eq!(art.counters["iters"], 10);
    assert_eq!(art.events["cycle.done"], 1);
    assert_eq!(art.spans["solve/cycle"].count, 1);
    assert_eq!(art.spans["solve"].count, 1);
    assert!((art.gauges["residual"] - 1.5e-11).abs() < 1e-20);
    let h = &art.hists["reduction"];
    assert_eq!(h.count(), 4);
    assert_eq!(h.other(), 1);
    assert!((h.quantile(0.5) - 0.25).abs() < 0.05, "{}", h.quantile(0.5));
    assert_eq!(art.hist_counts()["reduction"], 4);
}
