//! Integration tests for the global recorder: span nesting, timer
//! monotonicity, and a full JSONL round-trip through install/uninstall.
//!
//! The recorder is a process-wide singleton, so everything runs inside
//! one `#[test]` function, sequenced.

use std::sync::{Arc, Mutex};

use stochcdr_obs as obs;
use stochcdr_obs::json::Json;
use stochcdr_obs::{Record, Sink, Value};

#[derive(Debug, Default)]
struct Captured {
    /// (t, path, nanos, depth) per closed span.
    spans: Vec<(u64, String, u64, usize)>,
    counters: Vec<(String, u64)>,
}

/// Collects raw records into shared state readable after uninstall.
struct CaptureSink(Arc<Mutex<Captured>>);

impl CaptureSink {
    fn new() -> (Self, Arc<Mutex<Captured>>) {
        let shared = Arc::new(Mutex::new(Captured::default()));
        (CaptureSink(Arc::clone(&shared)), shared)
    }
}

impl Sink for CaptureSink {
    fn record(&mut self, at_nanos: u64, record: &Record<'_>) {
        let mut cap = self.0.lock().unwrap();
        match record {
            Record::Span {
                path, nanos, depth, ..
            } => {
                cap.spans
                    .push((at_nanos, (*path).to_string(), *nanos, *depth));
            }
            Record::Counter { name, delta } => {
                cap.counters.push(((*name).to_string(), *delta));
            }
            _ => {}
        }
    }
}

#[test]
fn global_recorder_end_to_end() {
    span_paths_nest_and_unwind();
    cross_thread_children_inherit_the_parent_path();
    span_timers_are_monotone();
    jsonl_round_trips_through_global_api();
    guards_from_a_previous_session_are_inert();
}

fn span_paths_nest_and_unwind() {
    let _ = obs::uninstall();
    let (sink, cap) = CaptureSink::new();
    obs::install(Box::new(sink));
    {
        let _a = obs::span("outer");
        {
            let _b = obs::span("middle");
            let _c = obs::span("inner");
            obs::counter("work", 2);
        }
        let _d = obs::span("sibling");
    }
    obs::uninstall();
    let cap = cap.lock().unwrap();

    let paths: Vec<(&str, usize)> = cap
        .spans
        .iter()
        .map(|(_, p, _, d)| (p.as_str(), *d))
        .collect();
    // Inner-most spans close first; the sibling reuses depth 2 after the
    // middle/inner pair unwound.
    assert_eq!(
        paths,
        vec![
            ("outer/middle/inner", 3),
            ("outer/middle", 2),
            ("outer/sibling", 2),
            ("outer", 1),
        ]
    );
    assert_eq!(cap.counters, vec![("work".to_string(), 2)]);
    // Emission times (t) are non-decreasing.
    let times: Vec<u64> = cap.spans.iter().map(|(t, ..)| *t).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
}

/// A span opened on another thread with an explicit parent id must land
/// under the dispatching span's path — the worker-pool attribution the
/// `par` kernels rely on (orphaned `par.worker` spans at top level were
/// exactly this bug).
fn cross_thread_children_inherit_the_parent_path() {
    let _ = obs::uninstall();
    let (sink, cap) = CaptureSink::new();
    obs::install(Box::new(sink));
    {
        let _k = obs::span("kernel");
        let parent = obs::current_span_id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = obs::span_child_of("par.worker", parent);
            });
        });
    }
    obs::uninstall();
    let cap = cap.lock().unwrap();
    let worker = cap
        .spans
        .iter()
        .find(|(_, p, ..)| p.contains("par.worker"))
        .expect("worker span recorded");
    assert_eq!(worker.1, "kernel/par.worker");
    assert_eq!(worker.3, 2, "depth must follow the cross-thread path");
}

fn span_timers_are_monotone() {
    let _ = obs::uninstall();
    let (sink, cap) = CaptureSink::new();
    obs::install(Box::new(sink));
    {
        let _outer = obs::span("outer");
        let inner = obs::span("inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
        drop(inner);
    }
    obs::uninstall();
    let cap = cap.lock().unwrap();
    let inner = cap
        .spans
        .iter()
        .find(|(_, p, ..)| p == "outer/inner")
        .unwrap();
    let outer = cap.spans.iter().find(|(_, p, ..)| p == "outer").unwrap();
    // The slept interval is visible, and the enclosing span cannot be
    // shorter than the enclosed one.
    assert!(inner.2 >= 2_000_000, "inner span {}ns", inner.2);
    assert!(
        outer.2 >= inner.2,
        "outer {}ns < inner {}ns",
        outer.2,
        inner.2
    );
}

fn jsonl_round_trips_through_global_api() {
    let _ = obs::uninstall();
    let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
    obs::install(Box::new(sink));
    {
        let _s = obs::span("solve");
        obs::counter("iters", 7);
        obs::gauge("residual", 1.5e-11);
        obs::event(
            "cycle.done",
            &[("cycle", 1u64.into()), ("note", Value::Str("first".into()))],
        );
    }
    obs::uninstall();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("valid JSON line"))
        .collect();
    assert_eq!(
        lines[0].get("schema").and_then(Json::as_str),
        Some(obs::SCHEMA_VERSION)
    );
    let kinds: Vec<&str> = lines
        .iter()
        .filter_map(|v| v.get("kind").and_then(Json::as_str))
        .collect();
    assert_eq!(kinds, vec!["meta", "counter", "gauge", "event", "span"]);
    let event = &lines[3];
    assert_eq!(
        event
            .get("fields")
            .and_then(|f| f.get("note"))
            .and_then(Json::as_str),
        Some("first")
    );
    assert_eq!(
        event
            .get("fields")
            .and_then(|f| f.get("cycle"))
            .and_then(Json::as_f64),
        Some(1.0)
    );
    let span = &lines[4];
    assert_eq!(span.get("path").and_then(Json::as_str), Some("solve"));
    assert!(span.get("nanos").and_then(Json::as_f64).unwrap() > 0.0);
}

fn guards_from_a_previous_session_are_inert() {
    let _ = obs::uninstall();
    let (sink, _cap) = CaptureSink::new();
    obs::install(Box::new(sink));
    let stale = obs::span("stale");
    obs::uninstall();
    let (sink2, cap2) = CaptureSink::new();
    obs::install(Box::new(sink2));
    drop(stale); // belongs to the torn-down session: must not record
    obs::uninstall();
    let cap = cap2.lock().unwrap();
    assert!(
        cap.spans.is_empty(),
        "stale guard recorded: {:?}",
        cap.spans
    );
}
