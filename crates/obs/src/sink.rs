//! Record consumers: the [`Sink`] trait and the built-ins —
//! [`NullSink`] (discard), [`SummarySink`] (aggregated human-readable
//! table), [`JsonLinesSink`] (one JSON object per record), and
//! [`MultiSink`] (fan-out to several sinks, e.g. metrics + trace).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::hist::LogHist;
use crate::json;
use crate::record::{Record, Value};

/// Version tag written to the first line of every JSONL stream and
/// recorded in docs; bump on breaking schema changes.
///
/// `/2` extends `/1` with span identity (`name`/`id`/`parent`/`tid` on
/// span lines) and aggregated `hist` lines flushed at finish. `/3`
/// extends `/2` with memory attribution on span lines (`alloc_bytes`,
/// `allocs` — zero without a [`crate::mem::TrackingAlloc`]) and the
/// `mem.*` gauges published by [`crate::mem::publish`]. `/4` extends
/// `/3` with `profile` lines (folded sampling-profiler stacks flushed
/// by [`crate::profile::Profile::publish`]) and the throttled
/// `solve.progress` heartbeat events from [`crate::heartbeat`]; both
/// are nondeterministic by nature, so the artifact diff treats them as
/// advisory.
pub const SCHEMA_VERSION: &str = "stochcdr-obs/4";

/// A consumer of instrumentation records.
///
/// Implementations receive every record emitted while they are
/// installed. `at_nanos` is the monotonic time since the sink was
/// installed.
pub trait Sink: Send {
    /// Consumes one record.
    fn record(&mut self, at_nanos: u64, record: &Record<'_>);

    /// Called once when the sink is uninstalled. Streaming sinks flush
    /// here; aggregating sinks may return a rendered report. Must be
    /// idempotent — the facade and callers may both invoke it.
    fn finish(&mut self) -> Option<String> {
        None
    }
}

/// Discards every record. Installing this is equivalent to leaving
/// instrumentation disabled, but exercises the full record path —
/// useful for overhead measurements.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _at_nanos: u64, _record: &Record<'_>) {}
}

/// Fans every record out to each inner sink in order. `finish` returns
/// the first rendered report any inner sink produces.
pub struct MultiSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiSink {
    /// Wraps `sinks`; records are delivered in the given order.
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn record(&mut self, at_nanos: u64, record: &Record<'_>) {
        for s in &mut self.sinks {
            s.record(at_nanos, record);
        }
    }

    fn finish(&mut self) -> Option<String> {
        let mut report = None;
        for s in &mut self.sinks {
            let r = s.finish();
            if report.is_none() {
                report = r;
            }
        }
        report
    }
}

#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    alloc_bytes: u64,
    allocs: u64,
}

#[derive(Debug, Default, Clone)]
struct GaugeAgg {
    count: u64,
    last: f64,
    min: f64,
    max: f64,
}

/// Aggregates records in memory and renders a hierarchical summary
/// table from [`Sink::finish`].
#[derive(Debug, Default)]
pub struct SummarySink {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeAgg>,
    events: BTreeMap<String, u64>,
    hists: BTreeMap<String, LogHist>,
    profile: BTreeMap<String, u64>,
    last_event_fields: BTreeMap<String, String>,
    end_ns: u64,
}

impl SummarySink {
    /// Creates an empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the aggregated table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stochcdr-obs summary ({}; {:.3} s observed)",
            SCHEMA_VERSION,
            self.end_ns as f64 * 1e-9
        );
        if !self.spans.is_empty() {
            out.push_str("\nspans (path, count, total, mean, min..max):\n");
            for (path, agg) in &self.spans {
                // Indent by nesting depth so the hierarchy reads as a tree.
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let mean = agg.total_ns as f64 / agg.count.max(1) as f64;
                let _ = writeln!(
                    out,
                    "  {:indent$}{:<32} {:>8}  {:>10}  {:>10}  {}..{}",
                    "",
                    leaf,
                    agg.count,
                    fmt_ns(agg.total_ns as f64),
                    fmt_ns(mean),
                    fmt_ns(agg.min_ns as f64),
                    fmt_ns(agg.max_ns as f64),
                    indent = depth * 2,
                );
            }
        }
        // Memory attribution only renders when a tracking allocator
        // charged something — summaries from untracked processes (and
        // pre-/3 replays) keep their old shape.
        if self.spans.values().any(|a| a.allocs > 0) {
            out.push_str("\nspan memory (path, bytes, allocs):\n");
            for (path, agg) in &self.spans {
                if agg.allocs == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<48} {:>12}  {:>8}",
                    path,
                    fmt_bytes(agg.alloc_bytes),
                    agg.allocs,
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {total}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges (last, min..max, n):\n");
            for (name, agg) in &self.gauges {
                let _ = writeln!(
                    out,
                    "  {:<40} {:.6e}  {:.3e}..{:.3e}  n={}",
                    name, agg.last, agg.min, agg.max, agg.count
                );
            }
        }
        if !self.hists.is_empty() {
            out.push_str("\nhistograms (name, count, p50, p95, max):\n");
            for (name, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {:<40} {:>8}  {:>10}  {:>10}  {}",
                    name,
                    h.count(),
                    fmt_hist_value(name, h.quantile(0.5)),
                    fmt_hist_value(name, h.quantile(0.95)),
                    fmt_hist_value(name, h.max()),
                );
            }
        }
        // Profile stacks only render when a sampler ran — summaries
        // from unprofiled runs keep their old shape.
        if !self.profile.is_empty() {
            out.push_str("\nprofile (folded stack, samples):\n");
            for (stack, count) in &self.profile {
                let _ = writeln!(out, "  {stack:<64} {count:>8}");
            }
        }
        if !self.events.is_empty() {
            out.push_str("\nevents (count, last fields):\n");
            for (name, count) in &self.events {
                let fields = self
                    .last_event_fields
                    .get(name)
                    .map(String::as_str)
                    .unwrap_or("");
                let _ = writeln!(out, "  {name:<40} {count:>6}  {fields}");
            }
        }
        out
    }
}

fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b < 1024.0 {
        format!("{b:.0}B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1}KiB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1}MiB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2}GiB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Histogram cells: names marked with a `_ns` / `.ns` component hold
/// nanoseconds (e.g. `multigrid.smooth.ns.level0`) and render with time
/// units; everything else renders in scientific form.
fn fmt_hist_value(name: &str, v: f64) -> String {
    if name.ends_with("_ns") || name.ends_with(".ns") || name.contains(".ns.") {
        fmt_ns(v)
    } else {
        format!("{v:.3e}")
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::F64(x) => format!("{x:.6e}"),
        Value::Bool(x) => x.to_string(),
        Value::Str(x) => x.clone(),
    }
}

impl Sink for SummarySink {
    fn record(&mut self, at_nanos: u64, record: &Record<'_>) {
        self.end_ns = self.end_ns.max(at_nanos);
        match record {
            // Aggregation keys on completed spans; the begin edge only
            // matters to streaming trace sinks.
            Record::SpanBegin { .. } => {}
            Record::Span {
                path,
                nanos,
                alloc_bytes,
                allocs,
                ..
            } => {
                let agg = self.spans.entry((*path).to_string()).or_default();
                if agg.count == 0 {
                    agg.min_ns = *nanos;
                    agg.max_ns = *nanos;
                } else {
                    agg.min_ns = agg.min_ns.min(*nanos);
                    agg.max_ns = agg.max_ns.max(*nanos);
                }
                agg.count += 1;
                agg.total_ns += nanos;
                agg.alloc_bytes += alloc_bytes;
                agg.allocs += allocs;
            }
            Record::Counter { name, delta } => {
                *self.counters.entry((*name).to_string()).or_default() += delta;
            }
            Record::Gauge { name, value } => {
                let agg = self.gauges.entry((*name).to_string()).or_default();
                if agg.count == 0 {
                    agg.min = *value;
                    agg.max = *value;
                } else {
                    agg.min = agg.min.min(*value);
                    agg.max = agg.max.max(*value);
                }
                agg.count += 1;
                agg.last = *value;
            }
            Record::Histogram { name, value } => {
                self.hists
                    .entry((*name).to_string())
                    .or_default()
                    .observe(*value);
            }
            Record::Event { name, fields } => {
                *self.events.entry((*name).to_string()).or_default() += 1;
                let mut rendered = String::new();
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        rendered.push(' ');
                    }
                    let _ = write!(rendered, "{k}={}", fmt_value(v));
                }
                self.last_event_fields.insert((*name).to_string(), rendered);
            }
            Record::ProfileSample { stack, count } => {
                *self.profile.entry((*stack).to_string()).or_default() += count;
            }
        }
    }

    fn finish(&mut self) -> Option<String> {
        Some(self.render())
    }
}

/// Streams each record as one JSON object per line.
///
/// The first line is a meta record carrying [`SCHEMA_VERSION`]:
/// `{"kind":"meta","schema":"stochcdr-obs/3"}`. Subsequent lines have
/// `kind` of `span`, `counter`, `gauge`, or `event`, a `t` field
/// (nanoseconds since install), and kind-specific fields. Histogram
/// observations are aggregated in memory and flushed as `hist` lines
/// (count/other/sum/min/max/p50/p95 plus sparse `bins`) when the sink
/// finishes. `SpanBegin` edges are not streamed — the completed `span`
/// line carries the full identity (`name`, `id`, `parent`, `tid`).
pub struct JsonLinesSink {
    w: Box<dyn Write + Send>,
    line: String,
    hists: BTreeMap<String, LogHist>,
    end_ns: u64,
    flushed: bool,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Wraps an arbitrary writer.
    pub fn new(mut w: Box<dyn Write + Send>) -> Self {
        let _ = writeln!(w, "{{\"kind\":\"meta\",\"schema\":\"{SCHEMA_VERSION}\"}}");
        JsonLinesSink {
            w,
            line: String::with_capacity(256),
            hists: BTreeMap::new(),
            end_ns: 0,
            flushed: false,
        }
    }

    /// Opens `path` for writing (truncating) and streams records to it.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Streams into a shared in-memory buffer; the returned handle can
    /// be read after the sink is uninstalled. Used by tests.
    pub fn to_shared_buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = Self::new(Box::new(SharedBuffer(Arc::clone(&buf))));
        (sink, buf)
    }

    fn push_value(line: &mut String, v: &Value) {
        match v {
            Value::U64(x) => {
                let _ = write!(line, "{x}");
            }
            Value::I64(x) => {
                let _ = write!(line, "{x}");
            }
            Value::F64(x) => json::write_f64(line, *x),
            Value::Bool(x) => {
                let _ = write!(line, "{x}");
            }
            Value::Str(x) => json::escape_into(line, x),
        }
    }
}

struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Sink for JsonLinesSink {
    fn record(&mut self, at_nanos: u64, record: &Record<'_>) {
        self.end_ns = self.end_ns.max(at_nanos);
        let line = &mut self.line;
        line.clear();
        match record {
            Record::SpanBegin { .. } => return,
            Record::Histogram { name, value } => {
                self.hists
                    .entry((*name).to_string())
                    .or_default()
                    .observe(*value);
                return;
            }
            Record::Span {
                path,
                name,
                id,
                parent,
                tid,
                nanos,
                depth,
                alloc_bytes,
                allocs,
            } => {
                line.push_str("{\"kind\":\"span\",\"path\":");
                json::escape_into(line, path);
                line.push_str(",\"name\":");
                json::escape_into(line, name);
                let _ = write!(
                    line,
                    ",\"id\":{id},\"parent\":{parent},\"tid\":{tid},\
                     \"nanos\":{nanos},\"depth\":{depth},\
                     \"alloc_bytes\":{alloc_bytes},\"allocs\":{allocs}"
                );
            }
            Record::Counter { name, delta } => {
                line.push_str("{\"kind\":\"counter\",\"name\":");
                json::escape_into(line, name);
                let _ = write!(line, ",\"delta\":{delta}");
            }
            Record::Gauge { name, value } => {
                line.push_str("{\"kind\":\"gauge\",\"name\":");
                json::escape_into(line, name);
                line.push_str(",\"value\":");
                json::write_f64(line, *value);
            }
            Record::Event { name, fields } => {
                line.push_str("{\"kind\":\"event\",\"name\":");
                json::escape_into(line, name);
                line.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    json::escape_into(line, k);
                    line.push(':');
                    Self::push_value(line, v);
                }
                line.push('}');
            }
            Record::ProfileSample { stack, count } => {
                line.push_str("{\"kind\":\"profile\",\"stack\":");
                json::escape_into(line, stack);
                let _ = write!(line, ",\"count\":{count}");
            }
        }
        let _ = write!(line, ",\"t\":{at_nanos}}}");
        let _ = writeln!(self.w, "{}", line);
    }

    fn finish(&mut self) -> Option<String> {
        if !self.flushed {
            self.flushed = true;
            for (name, h) in &self.hists {
                let mut line = String::with_capacity(256);
                line.push_str("{\"kind\":\"hist\",\"name\":");
                json::escape_into(&mut line, name);
                let _ = write!(line, ",\"count\":{},\"other\":{}", h.count(), h.other());
                line.push_str(",\"sum\":");
                json::write_f64(&mut line, h.sum());
                line.push_str(",\"min\":");
                json::write_f64(&mut line, h.min());
                line.push_str(",\"max\":");
                json::write_f64(&mut line, h.max());
                line.push_str(",\"p50\":");
                json::write_f64(&mut line, h.quantile(0.5));
                line.push_str(",\"p95\":");
                json::write_f64(&mut line, h.quantile(0.95));
                line.push_str(",\"bins\":[");
                for (i, (k, c)) in h.bins().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    let _ = write!(line, "[{k},{c}]");
                }
                let _ = write!(line, "],\"t\":{}}}", self.end_ns);
                let _ = writeln!(self.w, "{}", line);
            }
        }
        let _ = self.w.flush();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn span<'a>(path: &'a str, name: &'a str, nanos: u64, depth: usize) -> Record<'a> {
        Record::Span {
            path,
            name,
            id: depth as u64,
            parent: 0,
            tid: 0,
            nanos,
            depth,
            alloc_bytes: 0,
            allocs: 0,
        }
    }

    #[test]
    fn summary_aggregates_and_renders() {
        let mut s = SummarySink::new();
        s.record(10, &span("solve", "solve", 100, 1));
        s.record(20, &span("solve/cycle", "cycle", 40, 2));
        s.record(30, &span("solve/cycle", "cycle", 60, 2));
        s.record(
            40,
            &Record::Counter {
                name: "sweeps",
                delta: 3,
            },
        );
        s.record(
            50,
            &Record::Counter {
                name: "sweeps",
                delta: 2,
            },
        );
        s.record(
            60,
            &Record::Gauge {
                name: "residual",
                value: 1e-9,
            },
        );
        for v in [100.0, 200.0, 400.0] {
            s.record(
                65,
                &Record::Histogram {
                    name: "smooth_ns",
                    value: v,
                },
            );
        }
        s.record(
            70,
            &Record::Event {
                name: "cycle.done",
                fields: &[("residual", Value::F64(1e-9))],
            },
        );
        let text = s.render();
        assert!(text.contains("cycle"), "{text}");
        assert!(text.contains("sweeps"), "{text}");
        assert!(text.contains('5'), "{text}");
        assert!(text.contains("cycle.done"), "{text}");
        assert!(text.contains("histograms"), "{text}");
        assert!(text.contains("smooth_ns"), "{text}");
        assert_eq!(s.spans["solve/cycle"].count, 2);
        assert_eq!(s.spans["solve/cycle"].total_ns, 100);
        assert_eq!(s.counters["sweeps"], 5);
        assert_eq!(s.hists["smooth_ns"].count(), 3);
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let (mut sink, buf) = JsonLinesSink::to_shared_buffer();
        sink.record(5, &span("a/b", "b", 17, 2));
        sink.record(
            6,
            &Record::Gauge {
                name: "g",
                value: f64::NAN,
            },
        );
        sink.record(
            7,
            &Record::Event {
                name: "e\"scaped",
                fields: &[("k", Value::Str("v\n".into())), ("n", Value::I64(-3))],
            },
        );
        sink.record(
            8,
            &Record::Histogram {
                name: "h",
                value: 2.0,
            },
        );
        sink.record(
            9,
            &Record::ProfileSample {
                stack: "a;b",
                count: 12,
            },
        );
        sink.finish();
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(
            meta.get("schema").and_then(Json::as_str),
            Some(SCHEMA_VERSION)
        );
        let span = Json::parse(lines[1]).unwrap();
        assert_eq!(span.get("nanos").and_then(Json::as_f64), Some(17.0));
        assert_eq!(span.get("name").and_then(Json::as_str), Some("b"));
        assert_eq!(span.get("tid").and_then(Json::as_f64), Some(0.0));
        let gauge = Json::parse(lines[2]).unwrap();
        assert_eq!(gauge.get("value"), Some(&Json::Null));
        let event = Json::parse(lines[3]).unwrap();
        assert_eq!(event.get("name").and_then(Json::as_str), Some("e\"scaped"));
        let fields = event.get("fields").unwrap();
        assert_eq!(fields.get("k").and_then(Json::as_str), Some("v\n"));
        assert_eq!(fields.get("n").and_then(Json::as_f64), Some(-3.0));
        let profile = Json::parse(lines[4]).unwrap();
        assert_eq!(profile.get("kind").and_then(Json::as_str), Some("profile"));
        assert_eq!(profile.get("stack").and_then(Json::as_str), Some("a;b"));
        assert_eq!(profile.get("count").and_then(Json::as_f64), Some(12.0));
        // Histograms flush at finish, after every streamed record.
        let hist = Json::parse(lines[5]).unwrap();
        assert_eq!(hist.get("kind").and_then(Json::as_str), Some("hist"));
        assert_eq!(hist.get("count").and_then(Json::as_f64), Some(1.0));
        assert_eq!(hist.get("max").and_then(Json::as_f64), Some(2.0));
    }
}
