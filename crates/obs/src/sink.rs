//! Record consumers: the [`Sink`] trait and the three built-ins —
//! [`NullSink`] (discard), [`SummarySink`] (aggregated human-readable
//! table), and [`JsonLinesSink`] (one JSON object per record).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json;
use crate::record::{Record, Value};

/// Version tag written to the first line of every JSONL stream and
/// recorded in docs; bump on breaking schema changes.
pub const SCHEMA_VERSION: &str = "stochcdr-obs/1";

/// A consumer of instrumentation records.
///
/// Implementations receive every record emitted while they are
/// installed. `at_nanos` is the monotonic time since the sink was
/// installed.
pub trait Sink: Send {
    /// Consumes one record.
    fn record(&mut self, at_nanos: u64, record: &Record<'_>);

    /// Called once when the sink is uninstalled. Streaming sinks flush
    /// here; aggregating sinks may return a rendered report.
    fn finish(&mut self) -> Option<String> {
        None
    }
}

/// Discards every record. Installing this is equivalent to leaving
/// instrumentation disabled, but exercises the full record path —
/// useful for overhead measurements.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _at_nanos: u64, _record: &Record<'_>) {}
}

#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

#[derive(Debug, Default, Clone)]
struct GaugeAgg {
    count: u64,
    last: f64,
    min: f64,
    max: f64,
}

/// Aggregates records in memory and renders a hierarchical summary
/// table from [`Sink::finish`].
#[derive(Debug, Default)]
pub struct SummarySink {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeAgg>,
    events: BTreeMap<String, u64>,
    last_event_fields: BTreeMap<String, String>,
    end_ns: u64,
}

impl SummarySink {
    /// Creates an empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the aggregated table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stochcdr-obs summary ({}; {:.3} s observed)",
            SCHEMA_VERSION,
            self.end_ns as f64 * 1e-9
        );
        if !self.spans.is_empty() {
            out.push_str("\nspans (path, count, total, mean, min..max):\n");
            for (path, agg) in &self.spans {
                // Indent by nesting depth so the hierarchy reads as a tree.
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let mean = agg.total_ns as f64 / agg.count.max(1) as f64;
                let _ = writeln!(
                    out,
                    "  {:indent$}{:<32} {:>8}  {:>10}  {:>10}  {}..{}",
                    "",
                    leaf,
                    agg.count,
                    fmt_ns(agg.total_ns as f64),
                    fmt_ns(mean),
                    fmt_ns(agg.min_ns as f64),
                    fmt_ns(agg.max_ns as f64),
                    indent = depth * 2,
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, total) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {total}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges (last, min..max, n):\n");
            for (name, agg) in &self.gauges {
                let _ = writeln!(
                    out,
                    "  {:<40} {:.6e}  {:.3e}..{:.3e}  n={}",
                    name, agg.last, agg.min, agg.max, agg.count
                );
            }
        }
        if !self.events.is_empty() {
            out.push_str("\nevents (count, last fields):\n");
            for (name, count) in &self.events {
                let fields = self
                    .last_event_fields
                    .get(name)
                    .map(String::as_str)
                    .unwrap_or("");
                let _ = writeln!(out, "  {name:<40} {count:>6}  {fields}");
            }
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

fn fmt_value(v: &Value) -> String {
    match v {
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::F64(x) => format!("{x:.6e}"),
        Value::Bool(x) => x.to_string(),
        Value::Str(x) => x.clone(),
    }
}

impl Sink for SummarySink {
    fn record(&mut self, at_nanos: u64, record: &Record<'_>) {
        self.end_ns = self.end_ns.max(at_nanos);
        match record {
            Record::Span { path, nanos, .. } => {
                let agg = self.spans.entry((*path).to_string()).or_default();
                if agg.count == 0 {
                    agg.min_ns = *nanos;
                    agg.max_ns = *nanos;
                } else {
                    agg.min_ns = agg.min_ns.min(*nanos);
                    agg.max_ns = agg.max_ns.max(*nanos);
                }
                agg.count += 1;
                agg.total_ns += nanos;
            }
            Record::Counter { name, delta } => {
                *self.counters.entry((*name).to_string()).or_default() += delta;
            }
            Record::Gauge { name, value } => {
                let agg = self.gauges.entry((*name).to_string()).or_default();
                if agg.count == 0 {
                    agg.min = *value;
                    agg.max = *value;
                } else {
                    agg.min = agg.min.min(*value);
                    agg.max = agg.max.max(*value);
                }
                agg.count += 1;
                agg.last = *value;
            }
            Record::Event { name, fields } => {
                *self.events.entry((*name).to_string()).or_default() += 1;
                let mut rendered = String::new();
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        rendered.push(' ');
                    }
                    let _ = write!(rendered, "{k}={}", fmt_value(v));
                }
                self.last_event_fields.insert((*name).to_string(), rendered);
            }
        }
    }

    fn finish(&mut self) -> Option<String> {
        Some(self.render())
    }
}

/// Streams each record as one JSON object per line.
///
/// The first line is a meta record carrying [`SCHEMA_VERSION`]:
/// `{"kind":"meta","schema":"stochcdr-obs/1"}`. Subsequent lines have
/// `kind` of `span`, `counter`, `gauge`, or `event`, a `t` field
/// (nanoseconds since install), and kind-specific fields.
pub struct JsonLinesSink {
    w: Box<dyn Write + Send>,
    line: String,
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl JsonLinesSink {
    /// Wraps an arbitrary writer.
    pub fn new(mut w: Box<dyn Write + Send>) -> Self {
        let _ = writeln!(w, "{{\"kind\":\"meta\",\"schema\":\"{SCHEMA_VERSION}\"}}");
        JsonLinesSink {
            w,
            line: String::with_capacity(256),
        }
    }

    /// Opens `path` for writing (truncating) and streams records to it.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Streams into a shared in-memory buffer; the returned handle can
    /// be read after the sink is uninstalled. Used by tests.
    pub fn to_shared_buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = Self::new(Box::new(SharedBuffer(Arc::clone(&buf))));
        (sink, buf)
    }

    fn push_value(line: &mut String, v: &Value) {
        match v {
            Value::U64(x) => {
                let _ = write!(line, "{x}");
            }
            Value::I64(x) => {
                let _ = write!(line, "{x}");
            }
            Value::F64(x) => json::write_f64(line, *x),
            Value::Bool(x) => {
                let _ = write!(line, "{x}");
            }
            Value::Str(x) => json::escape_into(line, x),
        }
    }
}

struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Sink for JsonLinesSink {
    fn record(&mut self, at_nanos: u64, record: &Record<'_>) {
        let line = &mut self.line;
        line.clear();
        match record {
            Record::Span { path, nanos, depth } => {
                line.push_str("{\"kind\":\"span\",\"path\":");
                json::escape_into(line, path);
                let _ = write!(line, ",\"nanos\":{nanos},\"depth\":{depth}");
            }
            Record::Counter { name, delta } => {
                line.push_str("{\"kind\":\"counter\",\"name\":");
                json::escape_into(line, name);
                let _ = write!(line, ",\"delta\":{delta}");
            }
            Record::Gauge { name, value } => {
                line.push_str("{\"kind\":\"gauge\",\"name\":");
                json::escape_into(line, name);
                line.push_str(",\"value\":");
                json::write_f64(line, *value);
            }
            Record::Event { name, fields } => {
                line.push_str("{\"kind\":\"event\",\"name\":");
                json::escape_into(line, name);
                line.push_str(",\"fields\":{");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    json::escape_into(line, k);
                    line.push(':');
                    Self::push_value(line, v);
                }
                line.push('}');
            }
        }
        let _ = write!(line, ",\"t\":{at_nanos}}}");
        let _ = writeln!(self.w, "{}", line);
    }

    fn finish(&mut self) -> Option<String> {
        let _ = self.w.flush();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn summary_aggregates_and_renders() {
        let mut s = SummarySink::new();
        s.record(
            10,
            &Record::Span {
                path: "solve",
                nanos: 100,
                depth: 1,
            },
        );
        s.record(
            20,
            &Record::Span {
                path: "solve/cycle",
                nanos: 40,
                depth: 2,
            },
        );
        s.record(
            30,
            &Record::Span {
                path: "solve/cycle",
                nanos: 60,
                depth: 2,
            },
        );
        s.record(
            40,
            &Record::Counter {
                name: "sweeps",
                delta: 3,
            },
        );
        s.record(
            50,
            &Record::Counter {
                name: "sweeps",
                delta: 2,
            },
        );
        s.record(
            60,
            &Record::Gauge {
                name: "residual",
                value: 1e-9,
            },
        );
        s.record(
            70,
            &Record::Event {
                name: "cycle.done",
                fields: &[("residual", Value::F64(1e-9))],
            },
        );
        let text = s.render();
        assert!(text.contains("cycle"), "{text}");
        assert!(text.contains("sweeps"), "{text}");
        assert!(text.contains('5'), "{text}");
        assert!(text.contains("cycle.done"), "{text}");
        assert_eq!(s.spans["solve/cycle"].count, 2);
        assert_eq!(s.spans["solve/cycle"].total_ns, 100);
        assert_eq!(s.counters["sweeps"], 5);
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let (mut sink, buf) = JsonLinesSink::to_shared_buffer();
        sink.record(
            5,
            &Record::Span {
                path: "a/b",
                nanos: 17,
                depth: 2,
            },
        );
        sink.record(
            6,
            &Record::Gauge {
                name: "g",
                value: f64::NAN,
            },
        );
        sink.record(
            7,
            &Record::Event {
                name: "e\"scaped",
                fields: &[("k", Value::Str("v\n".into())), ("n", Value::I64(-3))],
            },
        );
        sink.finish();
        let bytes = buf.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        let meta = Json::parse(lines[0]).unwrap();
        assert_eq!(
            meta.get("schema").and_then(Json::as_str),
            Some(SCHEMA_VERSION)
        );
        let span = Json::parse(lines[1]).unwrap();
        assert_eq!(span.get("nanos").and_then(Json::as_f64), Some(17.0));
        let gauge = Json::parse(lines[2]).unwrap();
        assert_eq!(gauge.get("value"), Some(&Json::Null));
        let event = Json::parse(lines[3]).unwrap();
        assert_eq!(event.get("name").and_then(Json::as_str), Some("e\"scaped"));
        let fields = event.get("fields").unwrap();
        assert_eq!(fields.get("k").and_then(Json::as_str), Some("v\n"));
        assert_eq!(fields.get("n").and_then(Json::as_f64), Some(-3.0));
    }
}
