//! Minimal hand-rolled JSON support: escaping/formatting for the
//! [`JsonLinesSink`](crate::JsonLinesSink) writer and a small
//! recursive-descent parser used by tests and tools to validate and
//! inspect emitted metric lines. No external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON representation of `v` to `out`.
///
/// Finite values use exponent notation (always valid JSON and
/// round-trippable through `f64` parsing); non-finite values become
/// `null`, as JSON has no NaN/Infinity literals.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:e}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output (we only \u-escape control chars),
                            // but accept lone surrogates as replacement.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut out = String::new();
        escape_into(&mut out, nasty);
        assert_eq!(Json::parse(&out).unwrap(), Json::Str(nasty.to_string()));
    }

    #[test]
    fn f64_round_trips() {
        for v in [0.0, -1.5, 1e-300, 6.02e23, f64::MIN_POSITIVE] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(Json::parse(&out).unwrap().as_f64(), Some(v));
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, {"b": true, "c": null}], "d": "x y"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("d").and_then(Json::as_str), Some("x y"));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].as_f64(), Some(2.5));
                assert_eq!(items[2].get("b"), Some(&Json::Bool(true)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
