//! Live **solve progress** — interval-throttled `solve.progress`
//! heartbeats from long-running iteration loops.
//!
//! Multi-minute solves (million-state stationary distributions, wide
//! sweeps, long Monte-Carlo runs) are black boxes while they run: span
//! timers only report after the fact. A [`Heartbeat`] closes that gap.
//! Iteration loops call [`Heartbeat::tick_solve`] (iterative solvers:
//! residual + EWMA reduction factor) or [`Heartbeat::tick_unit`]
//! (work-unit loops: sweep points, MC shards) every iteration; the
//! heartbeat rate-limits emission to the configured interval and, when
//! due, publishes a `solve.progress` event into the installed sink and
//! an optional one-line status to stderr — current progress, projected
//! iterations-to-tolerance, ETA, and live heap bytes.
//!
//! **Default off.** [`configure`] (the CLI's `--progress` flag) arms it
//! process-wide; an unarmed heartbeat's tick is one atomic load and a
//! branch, performs no allocation, and emits nothing, so instrumented
//! loops stay bit-identical and allocation-free — the same contract as
//! the rest of the facade. Emission is cross-thread safe: all state is
//! atomic and a compare-exchange on the last-emit timestamp elects a
//! single emitting thread per interval, so parallel sweep workers share
//! one heartbeat without duplicate lines.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Process-wide heartbeat interval in nanoseconds; 0 = disarmed.
static INTERVAL_NANOS: AtomicU64 = AtomicU64::new(0);
/// Whether due heartbeats also print a one-liner to stderr.
static STDERR: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms, with `None`) heartbeats process-wide. `stderr`
/// selects whether due heartbeats also print a status line; the
/// `solve.progress` event is always emitted into the installed sink
/// when one is active. Intervals are clamped to ≥1 ms when armed.
pub fn configure(interval: Option<Duration>, stderr: bool) {
    let nanos = interval.map_or(0, |d| d.max(Duration::from_millis(1)).as_nanos() as u64);
    INTERVAL_NANOS.store(nanos, Ordering::Relaxed);
    STDERR.store(stderr, Ordering::Relaxed);
}

/// The currently configured heartbeat interval, `None` when disarmed.
pub fn interval() -> Option<Duration> {
    match INTERVAL_NANOS.load(Ordering::Relaxed) {
        0 => None,
        n => Some(Duration::from_nanos(n)),
    }
}

/// A per-phase progress emitter; see the [module docs](self).
///
/// Construct one per solve/sweep/run with [`Heartbeat::new`] and call a
/// `tick_*` method each iteration. All state is atomic, so parallel
/// workers can tick one shared heartbeat through `&self`.
#[derive(Debug)]
pub struct Heartbeat {
    /// Phase label carried in every emission (e.g. `"multigrid"`).
    phase: &'static str,
    /// Snapshot of [`INTERVAL_NANOS`] at construction; 0 = inert.
    interval_nanos: u64,
    stderr: bool,
    epoch: Instant,
    /// Nanos-since-epoch of the last emission (0 = none yet).
    last_emit: AtomicU64,
    /// Work units completed, maintained by [`Heartbeat::tick_unit`].
    units_done: AtomicU64,
    emitted: AtomicU64,
}

impl Heartbeat {
    /// Creates a heartbeat for `phase`, snapshotting the process-wide
    /// configuration. When heartbeats are disarmed (the default) the
    /// returned value is inert: ticks reduce to one branch.
    pub fn new(phase: &'static str) -> Heartbeat {
        Heartbeat {
            phase,
            interval_nanos: INTERVAL_NANOS.load(Ordering::Relaxed),
            stderr: STDERR.load(Ordering::Relaxed),
            epoch: Instant::now(),
            last_emit: AtomicU64::new(0),
            units_done: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
        }
    }

    /// Whether this heartbeat was armed at construction.
    #[inline]
    pub fn active(&self) -> bool {
        self.interval_nanos != 0
    }

    /// Emissions so far (for tests and callers that want a summary).
    pub fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }

    /// Elects this thread to emit iff the interval elapsed since the
    /// last emission. Returns the elapsed nanos on success.
    fn due(&self) -> Option<u64> {
        let elapsed = self.epoch.elapsed().as_nanos() as u64;
        let last = self.last_emit.load(Ordering::Relaxed);
        if elapsed.saturating_sub(last) < self.interval_nanos {
            return None;
        }
        // One winner per interval: losers see the freshly stored value.
        self.last_emit
            .compare_exchange(last, elapsed, Ordering::Relaxed, Ordering::Relaxed)
            .ok()
            .map(|_| elapsed)
    }

    /// Iterative-solver tick: call once per cycle/iteration with the
    /// current residual-style metric, the EWMA reduction factor from a
    /// `ConvergenceTrace` (when it has one yet), and the target
    /// tolerance. When due, emits a `solve.progress` event projecting
    /// iterations-to-tolerance and ETA from the EWMA factor.
    pub fn tick_solve(&self, iteration: u64, residual: f64, ewma: Option<f64>, tol: f64) {
        if !self.active() {
            return;
        }
        let Some(elapsed) = self.due() else { return };
        // Geometric projection: residual · ewma^k ≤ tol ⇒ k ≥
        // log(tol/residual)/log(ewma), valid only while converging.
        let remaining = match ewma {
            Some(r) if r > 0.0 && r < 1.0 && residual > tol && tol > 0.0 => {
                Some(((tol / residual).ln() / r.ln()).ceil().max(0.0))
            }
            _ => None,
        };
        let secs_per_iter = elapsed as f64 / 1e9 / iteration.max(1) as f64;
        let eta_secs = remaining.map(|r| r * secs_per_iter);
        let live = crate::mem::live_bytes();
        self.emitted.fetch_add(1, Ordering::Relaxed);
        crate::event(
            "solve.progress",
            &[
                ("phase", self.phase.into()),
                ("iteration", iteration.into()),
                ("residual", residual.into()),
                ("reduction_ewma", ewma.unwrap_or(f64::NAN).into()),
                ("remaining_iters", remaining.unwrap_or(f64::NAN).into()),
                ("eta_secs", eta_secs.unwrap_or(f64::NAN).into()),
                ("live_bytes", live.into()),
            ],
        );
        if self.stderr {
            let eta = eta_secs.map_or("?".to_string(), fmt_secs);
            eprintln!(
                "[stochcdr] {}: iter {iteration}  residual {residual:.3e}  \
                 ewma {}  eta {eta}  live {}",
                self.phase,
                ewma.map_or("?".to_string(), |r| format!("{r:.3}")),
                fmt_bytes(live),
            );
        }
    }

    /// Work-unit tick: call once per completed unit (sweep point, MC
    /// shard). The heartbeat counts units internally; when due, it
    /// emits a `solve.progress` event with done/total and a rate-based
    /// ETA. Safe to call from parallel workers through a shared `&self`.
    pub fn tick_unit(&self, total: u64) {
        if !self.active() {
            return;
        }
        let done = self.units_done.fetch_add(1, Ordering::Relaxed) + 1;
        let Some(elapsed) = self.due() else { return };
        let secs = elapsed as f64 / 1e9;
        let rate = done as f64 / secs.max(1e-9);
        let eta_secs = (total.saturating_sub(done)) as f64 / rate.max(1e-9);
        let live = crate::mem::live_bytes();
        self.emitted.fetch_add(1, Ordering::Relaxed);
        crate::event(
            "solve.progress",
            &[
                ("phase", self.phase.into()),
                ("done", done.into()),
                ("total", total.into()),
                ("units_per_sec", rate.into()),
                ("eta_secs", eta_secs.into()),
                ("live_bytes", live.into()),
            ],
        );
        if self.stderr {
            eprintln!(
                "[stochcdr] {}: {done}/{total}  ({rate:.1}/s)  eta {}  live {}",
                self.phase,
                fmt_secs(eta_secs),
                fmt_bytes(live),
            );
        }
    }
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 90.0 {
        format!("{:.1}m", secs / 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

fn fmt_bytes(bytes: u64) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= MIB {
        format!("{:.1}MiB", b / MIB)
    } else {
        format!("{:.1}KiB", b / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_heartbeat_is_inert() {
        configure(None, false);
        let hb = Heartbeat::new("test");
        assert!(!hb.active());
        hb.tick_solve(1, 1.0, Some(0.5), 1e-10);
        hb.tick_unit(10);
        assert_eq!(hb.emitted(), 0);
    }

    #[test]
    fn armed_heartbeat_rate_limits() {
        configure(Some(Duration::from_millis(1)), false);
        let hb = Heartbeat::new("test");
        configure(None, false); // restore the global default immediately
        assert!(hb.active());
        // The first tick lands before the interval elapsed: no emission.
        hb.tick_solve(1, 1.0, Some(0.5), 1e-10);
        assert_eq!(hb.emitted(), 0);
        std::thread::sleep(Duration::from_millis(2));
        hb.tick_solve(2, 0.5, Some(0.5), 1e-10);
        assert_eq!(hb.emitted(), 1);
        // Immediately after emitting, the next tick is throttled.
        hb.tick_solve(3, 0.25, Some(0.5), 1e-10);
        assert_eq!(hb.emitted(), 1);
    }
}
