//! Loading and validating recorded observability artifacts.
//!
//! Two artifact shapes exist: the JSONL metrics stream written by
//! [`crate::JsonLinesSink`] (`stochcdr-obs/1` or `/2`) and the Chrome
//! Trace Event array written by [`crate::ChromeTraceSink`]. This module
//! parses both — [`Artifact`] aggregates a metrics stream for
//! reporting/diffing, and [`check_trace`] validates a trace file's
//! structure (balanced begin/end edges per span name).

use std::collections::BTreeMap;

use crate::hist::LogHist;
use crate::json::Json;

/// Aggregated view of one JSONL metrics artifact.
#[derive(Debug, Default, Clone)]
pub struct Artifact {
    /// Schema tag from the meta line (`stochcdr-obs/1` or `/2`).
    pub schema: String,
    /// Counter name → summed deltas.
    pub counters: BTreeMap<String, u64>,
    /// Event name → occurrence count.
    pub events: BTreeMap<String, u64>,
    /// Gauge name → last recorded value.
    pub gauges: BTreeMap<String, f64>,
    /// Span path → aggregated stats.
    pub spans: BTreeMap<String, SpanStat>,
    /// Histogram name → reconstructed histogram.
    pub hists: BTreeMap<String, LogHist>,
}

/// Aggregated timing stats for one span path.
#[derive(Debug, Default, Clone)]
pub struct SpanStat {
    /// Completed span count.
    pub count: u64,
    /// Summed duration (ns).
    pub total_ns: u64,
    /// Fastest instance (ns).
    pub min_ns: u64,
    /// Slowest instance (ns).
    pub max_ns: u64,
}

impl SpanStat {
    fn fold(&mut self, nanos: u64) {
        if self.count == 0 {
            self.min_ns = nanos;
            self.max_ns = nanos;
        } else {
            self.min_ns = self.min_ns.min(nanos);
            self.max_ns = self.max_ns.max(nanos);
        }
        self.count += 1;
        self.total_ns += nanos;
    }
}

fn need_u64(v: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("line {line_no}: missing numeric \"{key}\""))
}

fn need_str<'a>(v: &'a Json, key: &str, line_no: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string \"{key}\""))
}

impl Artifact {
    /// Parses a JSONL metrics stream produced by [`crate::JsonLinesSink`].
    ///
    /// Accepts both `stochcdr-obs/1` and `/2`; `/1` streams simply lack
    /// span identity and `hist` lines. Unknown record kinds are an error
    /// so schema drift is caught loudly.
    pub fn load_jsonl(text: &str) -> Result<Artifact, String> {
        let mut art = Artifact::default();
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, meta_line) = lines.next().ok_or("empty artifact")?;
        let meta = Json::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
        if meta.get("kind").and_then(Json::as_str) != Some("meta") {
            return Err("first line is not a meta record".into());
        }
        let schema = need_str(&meta, "schema", 1)?;
        if schema != "stochcdr-obs/1" && schema != crate::SCHEMA_VERSION {
            return Err(format!("unsupported schema \"{schema}\""));
        }
        art.schema = schema.to_string();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let v = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
            match need_str(&v, "kind", line_no)? {
                "span" => {
                    let path = need_str(&v, "path", line_no)?;
                    let nanos = need_u64(&v, "nanos", line_no)?;
                    art.spans.entry(path.to_string()).or_default().fold(nanos);
                }
                "counter" => {
                    let name = need_str(&v, "name", line_no)?;
                    let delta = need_u64(&v, "delta", line_no)?;
                    *art.counters.entry(name.to_string()).or_default() += delta;
                }
                "gauge" => {
                    let name = need_str(&v, "name", line_no)?;
                    // NaN gauges serialize as null; keep them out of the map.
                    if let Some(value) = v.get("value").and_then(Json::as_f64) {
                        art.gauges.insert(name.to_string(), value);
                    }
                }
                "event" => {
                    let name = need_str(&v, "name", line_no)?;
                    *art.events.entry(name.to_string()).or_default() += 1;
                }
                "hist" => {
                    let name = need_str(&v, "name", line_no)?;
                    let count = need_u64(&v, "count", line_no)?;
                    let other = need_u64(&v, "other", line_no)?;
                    let sum = v.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
                    let min = v.get("min").and_then(Json::as_f64).unwrap_or(0.0);
                    let max = v.get("max").and_then(Json::as_f64).unwrap_or(0.0);
                    let mut bins = BTreeMap::new();
                    if let Some(Json::Arr(pairs)) = v.get("bins") {
                        for pair in pairs {
                            let Json::Arr(kv) = pair else {
                                return Err(format!("line {line_no}: bad bins entry"));
                            };
                            let (Some(k), Some(c)) = (
                                kv.first().and_then(Json::as_f64),
                                kv.get(1).and_then(Json::as_f64),
                            ) else {
                                return Err(format!("line {line_no}: bad bins entry"));
                            };
                            bins.insert(k as i32, c as u64);
                        }
                    }
                    art.hists.insert(
                        name.to_string(),
                        LogHist::from_parts(count, other, sum, min, max, bins),
                    );
                }
                "meta" => return Err(format!("line {line_no}: duplicate meta record")),
                other => return Err(format!("line {line_no}: unknown kind \"{other}\"")),
            }
        }
        Ok(art)
    }

    /// Histogram observation counts (`name` → count) — deterministic for
    /// a pinned thread count even though the timing values are not.
    pub fn hist_counts(&self) -> BTreeMap<&str, u64> {
        self.hists
            .iter()
            .map(|(name, h)| (name.as_str(), h.count()))
            .collect()
    }
}

/// Heuristic: Chrome trace artifacts are a JSON array, JSONL metrics
/// streams start with an object line.
pub fn looks_like_trace(text: &str) -> bool {
    text.trim_start().starts_with('[')
}

/// Structural summary of a Chrome trace file from [`check_trace`].
#[derive(Debug, Default, Clone)]
pub struct TraceCheck {
    /// Total trace events (all phases).
    pub events: usize,
    /// `ph:"B"` count.
    pub begins: usize,
    /// `ph:"E"` count.
    pub ends: usize,
    /// Distinct `tid` lanes seen.
    pub threads: usize,
    /// Span names whose begin/end counts differ (empty = balanced).
    pub unbalanced: Vec<String>,
    /// Per-span-name begin counts, for reporting.
    pub span_counts: BTreeMap<String, usize>,
}

/// Parses a Chrome Trace Event array and checks that every span name
/// has matching begin/end edge counts.
///
/// Per-*name* balance (rather than per-thread stack nesting) is the
/// right invariant here: a worker span can begin on one lane while an
/// overlapping same-name span runs on another, but a name with more
/// `B` than `E` edges means a guard never closed.
pub fn check_trace(text: &str) -> Result<TraceCheck, String> {
    let parsed = Json::parse(text)?;
    let Json::Arr(events) = parsed else {
        return Err("trace is not a JSON array".into());
    };
    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    let mut balance: BTreeMap<String, i64> = BTreeMap::new();
    let mut tids = std::collections::BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        if let Some(tid) = e.get("tid").and_then(Json::as_f64) {
            tids.insert(tid as u64);
        }
        match ph {
            "B" => {
                check.begins += 1;
                *balance.entry(name.to_string()).or_default() += 1;
                *check.span_counts.entry(name.to_string()).or_default() += 1;
            }
            "E" => {
                check.ends += 1;
                *balance.entry(name.to_string()).or_default() -= 1;
            }
            _ => {}
        }
    }
    check.threads = tids.len();
    check.unbalanced = balance
        .into_iter()
        .filter(|(_, bal)| *bal != 0)
        .map(|(name, _)| name)
        .collect();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(Artifact::load_jsonl("").is_err());
        assert!(Artifact::load_jsonl("{\"kind\":\"meta\",\"schema\":\"other/9\"}\n").is_err());
        assert!(Artifact::load_jsonl("not json\n").is_err());
        let bad_kind =
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/2\"}\n{\"kind\":\"mystery\"}\n";
        assert!(Artifact::load_jsonl(bad_kind).is_err());
    }

    #[test]
    fn accepts_schema_one_streams() {
        let text = concat!(
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/1\"}\n",
            "{\"kind\":\"span\",\"path\":\"a/b\",\"nanos\":10,\"depth\":2,\"t\":1}\n",
            "{\"kind\":\"counter\",\"name\":\"c\",\"delta\":4,\"t\":2}\n",
        );
        let art = Artifact::load_jsonl(text).unwrap();
        assert_eq!(art.schema, "stochcdr-obs/1");
        assert_eq!(art.spans["a/b"].count, 1);
        assert_eq!(art.counters["c"], 4);
    }

    #[test]
    fn trace_check_flags_unbalanced_names() {
        let text = r#"[
            {"name":"a","ph":"B","pid":0,"tid":0,"ts":1},
            {"name":"a","ph":"E","pid":0,"tid":0,"ts":2},
            {"name":"b","ph":"B","pid":0,"tid":1,"ts":3}
        ]"#;
        let check = check_trace(text).unwrap();
        assert_eq!(check.events, 3);
        assert_eq!(check.begins, 2);
        assert_eq!(check.ends, 1);
        assert_eq!(check.threads, 2);
        assert_eq!(check.unbalanced, vec!["b".to_string()]);
    }

    #[test]
    fn detects_artifact_shape() {
        assert!(looks_like_trace("  [\n{}\n]"));
        assert!(!looks_like_trace("{\"kind\":\"meta\"}"));
    }
}
