//! Loading and validating recorded observability artifacts.
//!
//! Two artifact shapes exist: the JSONL metrics stream written by
//! [`crate::JsonLinesSink`] (`stochcdr-obs/1` through `/4`) and the
//! Chrome Trace Event array written by [`crate::ChromeTraceSink`]. This
//! module parses both — [`Artifact`] aggregates a metrics stream for
//! reporting, and [`check_trace`] validates a trace file's structure
//! (balanced begin/end edges per span name). [`diff`] compares two
//! aggregated artifacts into a regression report: deterministic facts
//! (counters, event counts, span counts, non-timing histogram bins) are
//! exact, while timings and memory sizes carry a relative tolerance and
//! only ever produce advisories.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::LogHist;
use crate::json::Json;

/// Aggregated view of one JSONL metrics artifact.
#[derive(Debug, Default, Clone)]
pub struct Artifact {
    /// Schema tag from the meta line (`stochcdr-obs/1` through `/4`).
    pub schema: String,
    /// Counter name → summed deltas.
    pub counters: BTreeMap<String, u64>,
    /// Event name → occurrence count.
    pub events: BTreeMap<String, u64>,
    /// Gauge name → last recorded value.
    pub gauges: BTreeMap<String, f64>,
    /// Span path → aggregated stats.
    pub spans: BTreeMap<String, SpanStat>,
    /// Histogram name → reconstructed histogram.
    pub hists: BTreeMap<String, LogHist>,
    /// Folded profiler stack → sample count (`/4`; empty for older
    /// schemas and unprofiled runs). Sample counts are scheduling-
    /// dependent, so [`diff`] treats the whole section as advisory.
    pub profile: BTreeMap<String, u64>,
}

/// Aggregated timing stats for one span path.
#[derive(Debug, Default, Clone)]
pub struct SpanStat {
    /// Completed span count.
    pub count: u64,
    /// Summed duration (ns).
    pub total_ns: u64,
    /// Fastest instance (ns).
    pub min_ns: u64,
    /// Slowest instance (ns).
    pub max_ns: u64,
    /// Summed heap bytes charged to the span on its own thread (0 for
    /// pre-`/3` artifacts or untracked processes).
    pub alloc_bytes: u64,
    /// Summed allocation count (0 for pre-`/3` artifacts).
    pub allocs: u64,
}

impl SpanStat {
    fn fold(&mut self, nanos: u64, alloc_bytes: u64, allocs: u64) {
        if self.count == 0 {
            self.min_ns = nanos;
            self.max_ns = nanos;
        } else {
            self.min_ns = self.min_ns.min(nanos);
            self.max_ns = self.max_ns.max(nanos);
        }
        self.count += 1;
        self.total_ns += nanos;
        self.alloc_bytes += alloc_bytes;
        self.allocs += allocs;
    }
}

fn need_u64(v: &Json, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("line {line_no}: missing numeric \"{key}\""))
}

fn need_str<'a>(v: &'a Json, key: &str, line_no: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string \"{key}\""))
}

impl Artifact {
    /// Parses a JSONL metrics stream produced by [`crate::JsonLinesSink`].
    ///
    /// Accepts `stochcdr-obs/1` through `/4`: `/1` streams simply lack
    /// span identity and `hist` lines, pre-`/3` span lines lack the
    /// memory fields (read as zero), and pre-`/4` streams have no
    /// `profile` lines (the section stays empty). Unknown record kinds
    /// are an error so schema drift is caught loudly.
    pub fn load_jsonl(text: &str) -> Result<Artifact, String> {
        let mut art = Artifact::default();
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, meta_line) = lines.next().ok_or("empty artifact")?;
        let meta = Json::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
        if meta.get("kind").and_then(Json::as_str) != Some("meta") {
            return Err("first line is not a meta record".into());
        }
        let schema = need_str(&meta, "schema", 1)?;
        if schema != "stochcdr-obs/1"
            && schema != "stochcdr-obs/2"
            && schema != "stochcdr-obs/3"
            && schema != crate::SCHEMA_VERSION
        {
            return Err(format!("unsupported schema \"{schema}\""));
        }
        art.schema = schema.to_string();
        for (idx, line) in lines {
            let line_no = idx + 1;
            let v = Json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
            match need_str(&v, "kind", line_no)? {
                "span" => {
                    let path = need_str(&v, "path", line_no)?;
                    let nanos = need_u64(&v, "nanos", line_no)?;
                    // Memory fields are new in /3; older spans read zero.
                    let opt = |key: &str| {
                        v.get(key)
                            .and_then(Json::as_f64)
                            .map(|f| f as u64)
                            .unwrap_or(0)
                    };
                    art.spans.entry(path.to_string()).or_default().fold(
                        nanos,
                        opt("alloc_bytes"),
                        opt("allocs"),
                    );
                }
                "counter" => {
                    let name = need_str(&v, "name", line_no)?;
                    let delta = need_u64(&v, "delta", line_no)?;
                    *art.counters.entry(name.to_string()).or_default() += delta;
                }
                "gauge" => {
                    let name = need_str(&v, "name", line_no)?;
                    // NaN gauges serialize as null; keep them out of the map.
                    if let Some(value) = v.get("value").and_then(Json::as_f64) {
                        art.gauges.insert(name.to_string(), value);
                    }
                }
                "event" => {
                    let name = need_str(&v, "name", line_no)?;
                    *art.events.entry(name.to_string()).or_default() += 1;
                }
                "hist" => {
                    let name = need_str(&v, "name", line_no)?;
                    let count = need_u64(&v, "count", line_no)?;
                    let other = need_u64(&v, "other", line_no)?;
                    let sum = v.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
                    let min = v.get("min").and_then(Json::as_f64).unwrap_or(0.0);
                    let max = v.get("max").and_then(Json::as_f64).unwrap_or(0.0);
                    let mut bins = BTreeMap::new();
                    if let Some(Json::Arr(pairs)) = v.get("bins") {
                        for pair in pairs {
                            let Json::Arr(kv) = pair else {
                                return Err(format!("line {line_no}: bad bins entry"));
                            };
                            let (Some(k), Some(c)) = (
                                kv.first().and_then(Json::as_f64),
                                kv.get(1).and_then(Json::as_f64),
                            ) else {
                                return Err(format!("line {line_no}: bad bins entry"));
                            };
                            bins.insert(k as i32, c as u64);
                        }
                    }
                    art.hists.insert(
                        name.to_string(),
                        LogHist::from_parts(count, other, sum, min, max, bins),
                    );
                }
                "profile" => {
                    let stack = need_str(&v, "stack", line_no)?;
                    let count = need_u64(&v, "count", line_no)?;
                    *art.profile.entry(stack.to_string()).or_default() += count;
                }
                "meta" => return Err(format!("line {line_no}: duplicate meta record")),
                other => return Err(format!("line {line_no}: unknown kind \"{other}\"")),
            }
        }
        Ok(art)
    }

    /// Histogram observation counts (`name` → count) — deterministic for
    /// a pinned thread count even though the timing values are not.
    pub fn hist_counts(&self) -> BTreeMap<&str, u64> {
        self.hists
            .iter()
            .map(|(name, h)| (name.as_str(), h.count()))
            .collect()
    }
}

/// Options for [`diff`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative tolerance for advisory quantities (timings, byte
    /// sizes): a fresh/baseline ratio outside `[1/(1+tol), 1+tol]` is
    /// flagged. Advisories never make the diff fail.
    pub rel_tol: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        // Wall-clock noise on shared runners easily reaches tens of
        // percent; the default only flags drifts worth a second look.
        DiffOptions { rel_tol: 0.5 }
    }
}

/// Outcome of [`diff`]: deterministic mismatches (failures), tolerance
/// advisories, and the rendered regression report.
#[derive(Debug, Default, Clone)]
pub struct DiffReport {
    /// Deterministic mismatches — a gate should fail on any of these.
    pub failures: Vec<String>,
    /// Quantities outside the relative tolerance — informational only.
    pub advisories: Vec<String>,
    /// Human-readable regression report (always rendered).
    pub text: String,
}

impl DiffReport {
    /// True when no deterministic mismatch was found.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Histogram/span names holding nanosecond timings (`*.ns`, `*_ns`,
/// `*.ns.*`) — compared with tolerance instead of exactly.
fn timing_name(name: &str) -> bool {
    name.ends_with("_ns") || name.ends_with(".ns") || name.contains(".ns.")
}

fn ratio_line(what: &str, base: f64, fresh: f64) -> String {
    let ratio = if base > 0.0 { fresh / base } else { f64::NAN };
    format!("{what}: baseline {base:.4e} fresh {fresh:.4e} ratio {ratio:.3}")
}

fn check_ratio(report: &mut DiffReport, opts: &DiffOptions, what: &str, base: f64, fresh: f64) {
    let line = ratio_line(what, base, fresh);
    let within = if base == 0.0 && fresh == 0.0 {
        true
    } else if base <= 0.0 || fresh <= 0.0 {
        false
    } else {
        let ratio = fresh / base;
        ratio <= 1.0 + opts.rel_tol && ratio >= 1.0 / (1.0 + opts.rel_tol)
    };
    if within {
        let _ = writeln!(report.text, "    ok    {line}");
    } else {
        let _ = writeln!(report.text, "    WARN  {line}");
        report.advisories.push(line);
    }
}

fn diff_exact_u64<'a>(
    report: &mut DiffReport,
    section: &str,
    baseline: impl Iterator<Item = (&'a str, u64)>,
    fresh: impl Iterator<Item = (&'a str, u64)>,
) {
    let base: BTreeMap<&str, u64> = baseline.collect();
    let new: BTreeMap<&str, u64> = fresh.collect();
    let keys: std::collections::BTreeSet<&str> = base.keys().chain(new.keys()).copied().collect();
    for key in keys {
        match (base.get(key), new.get(key)) {
            (Some(b), Some(f)) if b == f => {}
            (b, f) => {
                let line = format!(
                    "{section}.{key}: baseline {} fresh {}",
                    b.map_or("<missing>".to_string(), u64::to_string),
                    f.map_or("<missing>".to_string(), u64::to_string),
                );
                let _ = writeln!(report.text, "    FAIL  {line}");
                report.failures.push(line);
            }
        }
    }
}

/// Compares two aggregated metrics artifacts and renders a regression
/// report.
///
/// Exact (any mismatch is a failure): counter totals, event counts,
/// span counts, and — for non-timing histograms, whose observed values
/// are deterministic model quantities — the full per-bin distribution
/// plus the overflow count. With tolerance (advisory only): span
/// timings, span memory attribution, timing-histogram medians, and
/// every gauge (gauges include wall-clock-derived rates).
pub fn diff(baseline: &Artifact, fresh: &Artifact, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    let _ = writeln!(
        report.text,
        "obs diff (baseline {}, fresh {}, rel_tol {})",
        baseline.schema, fresh.schema, opts.rel_tol
    );

    let _ = writeln!(report.text, "  counters (exact):");
    diff_exact_u64(
        &mut report,
        "counter",
        baseline.counters.iter().map(|(k, v)| (k.as_str(), *v)),
        fresh.counters.iter().map(|(k, v)| (k.as_str(), *v)),
    );
    // Heartbeat progress events are emitted on a wall-clock interval,
    // so their count depends on machine speed — excluded from the exact
    // section and compared with tolerance instead (advisory only).
    let heartbeat = |name: &str| name == "solve.progress";
    let _ = writeln!(report.text, "  events (exact):");
    diff_exact_u64(
        &mut report,
        "event",
        baseline
            .events
            .iter()
            .filter(|(k, _)| !heartbeat(k))
            .map(|(k, v)| (k.as_str(), *v)),
        fresh
            .events
            .iter()
            .filter(|(k, _)| !heartbeat(k))
            .map(|(k, v)| (k.as_str(), *v)),
    );
    let hb_base = baseline.events.get("solve.progress").copied().unwrap_or(0);
    let hb_fresh = fresh.events.get("solve.progress").copied().unwrap_or(0);
    if hb_base > 0 || hb_fresh > 0 {
        let _ = writeln!(report.text, "  heartbeat events (advisory):");
        check_ratio(
            &mut report,
            opts,
            "event.solve.progress",
            hb_base as f64,
            hb_fresh as f64,
        );
    }
    let _ = writeln!(report.text, "  span counts (exact):");
    diff_exact_u64(
        &mut report,
        "span",
        baseline.spans.iter().map(|(k, s)| (k.as_str(), s.count)),
        fresh.spans.iter().map(|(k, s)| (k.as_str(), s.count)),
    );

    let _ = writeln!(report.text, "  histograms:");
    let hist_keys: std::collections::BTreeSet<&str> = baseline
        .hists
        .keys()
        .chain(fresh.hists.keys())
        .map(String::as_str)
        .collect();
    for name in hist_keys {
        match (baseline.hists.get(name), fresh.hists.get(name)) {
            (Some(b), Some(f)) if timing_name(name) => {
                // Timing payloads drift with machine load; gate only the
                // observation count, report the median with tolerance.
                if b.count() != f.count() {
                    let line = format!(
                        "hist.{name}.count: baseline {} fresh {}",
                        b.count(),
                        f.count()
                    );
                    let _ = writeln!(report.text, "    FAIL  {line}");
                    report.failures.push(line);
                }
                check_ratio(
                    &mut report,
                    opts,
                    &format!("hist.{name}.p50"),
                    b.quantile(0.5),
                    f.quantile(0.5),
                );
            }
            (Some(b), Some(f)) => {
                // Deterministic values: the whole binned distribution
                // must match, bin by bin.
                let bins_equal =
                    b.count() == f.count() && b.other() == f.other() && b.bins().eq(f.bins());
                if bins_equal {
                    let _ = writeln!(
                        report.text,
                        "    ok    hist.{name}: {} obs, bins identical",
                        b.count()
                    );
                } else {
                    let line = format!(
                        "hist.{name}: bins differ (baseline {} obs/{} bins, \
                         fresh {} obs/{} bins)",
                        b.count(),
                        b.bins().count(),
                        f.count(),
                        f.bins().count(),
                    );
                    let _ = writeln!(report.text, "    FAIL  {line}");
                    report.failures.push(line);
                }
            }
            (b, _) => {
                let line = format!(
                    "hist.{name}: present only in {}",
                    if b.is_some() { "baseline" } else { "fresh" }
                );
                let _ = writeln!(report.text, "    FAIL  {line}");
                report.failures.push(line);
            }
        }
    }

    let _ = writeln!(report.text, "  span timings (advisory):");
    for (path, b) in &baseline.spans {
        if let Some(f) = fresh.spans.get(path) {
            check_ratio(
                &mut report,
                opts,
                &format!("span.{path}.total_ns"),
                b.total_ns as f64,
                f.total_ns as f64,
            );
        }
    }

    // Memory attribution only exists on /3-era artifacts from tracked
    // processes; sections render empty rather than erroring on older
    // inputs.
    let mem_spans: Vec<&String> = baseline
        .spans
        .iter()
        .filter(|(path, b)| b.allocs > 0 || fresh.spans.get(*path).is_some_and(|f| f.allocs > 0))
        .map(|(path, _)| path)
        .collect();
    if !mem_spans.is_empty() {
        let _ = writeln!(report.text, "  span memory (advisory):");
        for path in mem_spans {
            let b = &baseline.spans[path];
            if let Some(f) = fresh.spans.get(path) {
                check_ratio(
                    &mut report,
                    opts,
                    &format!("span.{path}.alloc_bytes"),
                    b.alloc_bytes as f64,
                    f.alloc_bytes as f64,
                );
            }
        }
    }

    let gauge_keys: std::collections::BTreeSet<&str> = baseline
        .gauges
        .keys()
        .chain(fresh.gauges.keys())
        .map(String::as_str)
        .collect();
    if !gauge_keys.is_empty() {
        let _ = writeln!(report.text, "  gauges (advisory):");
        for name in gauge_keys {
            match (baseline.gauges.get(name), fresh.gauges.get(name)) {
                (Some(b), Some(f)) => {
                    check_ratio(&mut report, opts, &format!("gauge.{name}"), *b, *f);
                }
                (b, _) => {
                    let line = format!(
                        "gauge.{name}: present only in {}",
                        if b.is_some() { "baseline" } else { "fresh" }
                    );
                    let _ = writeln!(report.text, "    WARN  {line}");
                    report.advisories.push(line);
                }
            }
        }
    }

    // Profile sections are wholly nondeterministic — both the counts
    // (scheduling) and the set of observed stacks (a short-lived span
    // may or may not be sampled) vary run to run. Compare only the
    // total sample volume, with tolerance.
    if !baseline.profile.is_empty() || !fresh.profile.is_empty() {
        let _ = writeln!(report.text, "  profile (advisory):");
        let b_total: u64 = baseline.profile.values().sum();
        let f_total: u64 = fresh.profile.values().sum();
        check_ratio(
            &mut report,
            opts,
            "profile.total_samples",
            b_total as f64,
            f_total as f64,
        );
        let _ = writeln!(
            report.text,
            "    note  profile stacks: baseline {} fresh {}",
            baseline.profile.len(),
            fresh.profile.len()
        );
    }

    let _ = writeln!(
        report.text,
        "result: {} failure(s), {} advisory(ies)",
        report.failures.len(),
        report.advisories.len()
    );
    report
}

/// Heuristic: Chrome trace artifacts are a JSON array, JSONL metrics
/// streams start with an object line.
pub fn looks_like_trace(text: &str) -> bool {
    text.trim_start().starts_with('[')
}

/// Structural summary of a Chrome trace file from [`check_trace`].
#[derive(Debug, Default, Clone)]
pub struct TraceCheck {
    /// Total trace events (all phases).
    pub events: usize,
    /// `ph:"B"` count.
    pub begins: usize,
    /// `ph:"E"` count.
    pub ends: usize,
    /// Distinct `tid` lanes seen.
    pub threads: usize,
    /// Span names whose begin/end counts differ (empty = balanced).
    pub unbalanced: Vec<String>,
    /// Per-span-name begin counts, for reporting.
    pub span_counts: BTreeMap<String, usize>,
}

/// Parses a Chrome Trace Event array and checks that every span name
/// has matching begin/end edge counts.
///
/// Per-*name* balance (rather than per-thread stack nesting) is the
/// right invariant here: a worker span can begin on one lane while an
/// overlapping same-name span runs on another, but a name with more
/// `B` than `E` edges means a guard never closed.
pub fn check_trace(text: &str) -> Result<TraceCheck, String> {
    let parsed = Json::parse(text)?;
    let Json::Arr(events) = parsed else {
        return Err("trace is not a JSON array".into());
    };
    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    let mut balance: BTreeMap<String, i64> = BTreeMap::new();
    let mut tids = std::collections::BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        if let Some(tid) = e.get("tid").and_then(Json::as_f64) {
            tids.insert(tid as u64);
        }
        match ph {
            "B" => {
                check.begins += 1;
                *balance.entry(name.to_string()).or_default() += 1;
                *check.span_counts.entry(name.to_string()).or_default() += 1;
            }
            "E" => {
                check.ends += 1;
                *balance.entry(name.to_string()).or_default() -= 1;
            }
            _ => {}
        }
    }
    check.threads = tids.len();
    check.unbalanced = balance
        .into_iter()
        .filter(|(_, bal)| *bal != 0)
        .map(|(name, _)| name)
        .collect();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(Artifact::load_jsonl("").is_err());
        assert!(Artifact::load_jsonl("{\"kind\":\"meta\",\"schema\":\"other/9\"}\n").is_err());
        assert!(Artifact::load_jsonl("not json\n").is_err());
        let bad_kind =
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/2\"}\n{\"kind\":\"mystery\"}\n";
        assert!(Artifact::load_jsonl(bad_kind).is_err());
    }

    #[test]
    fn accepts_schema_one_streams() {
        let text = concat!(
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/1\"}\n",
            "{\"kind\":\"span\",\"path\":\"a/b\",\"nanos\":10,\"depth\":2,\"t\":1}\n",
            "{\"kind\":\"counter\",\"name\":\"c\",\"delta\":4,\"t\":2}\n",
        );
        let art = Artifact::load_jsonl(text).unwrap();
        assert_eq!(art.schema, "stochcdr-obs/1");
        assert_eq!(art.spans["a/b"].count, 1);
        assert_eq!(art.counters["c"], 4);
    }

    #[test]
    fn trace_check_flags_unbalanced_names() {
        let text = r#"[
            {"name":"a","ph":"B","pid":0,"tid":0,"ts":1},
            {"name":"a","ph":"E","pid":0,"tid":0,"ts":2},
            {"name":"b","ph":"B","pid":0,"tid":1,"ts":3}
        ]"#;
        let check = check_trace(text).unwrap();
        assert_eq!(check.events, 3);
        assert_eq!(check.begins, 2);
        assert_eq!(check.ends, 1);
        assert_eq!(check.threads, 2);
        assert_eq!(check.unbalanced, vec!["b".to_string()]);
    }

    #[test]
    fn diff_is_exact_on_facts_and_tolerant_on_timings() {
        let make = |count: u64, nanos: u64, reduction: f64| {
            let text = format!(
                concat!(
                    "{{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/3\"}}\n",
                    "{{\"kind\":\"span\",\"path\":\"solve\",\"name\":\"solve\",",
                    "\"id\":1,\"parent\":0,\"tid\":0,\"nanos\":{nanos},\"depth\":1,",
                    "\"alloc_bytes\":1024,\"allocs\":4,\"t\":1}}\n",
                    "{{\"kind\":\"counter\",\"name\":\"sweeps\",\"delta\":{count},\"t\":2}}\n",
                    "{{\"kind\":\"hist\",\"name\":\"reduction\",\"count\":1,\"other\":0,",
                    "\"sum\":{red:e},\"min\":{red:e},\"max\":{red:e},\"p50\":{red:e},",
                    "\"p95\":{red:e},\"bins\":[[{bin},1]],\"t\":3}}\n",
                ),
                nanos = nanos,
                count = count,
                red = reduction,
                bin = (reduction.log2() * 4.0).floor() as i32,
            );
            Artifact::load_jsonl(&text).unwrap()
        };
        let base = make(5, 1000, 0.25);

        // Identical facts, 10% slower timing: green with default tol.
        let close = make(5, 1100, 0.25);
        let report = diff(&base, &close, &DiffOptions::default());
        assert!(report.ok(), "{}", report.text);
        assert!(report.advisories.is_empty(), "{}", report.text);

        // 10x slower timing: still green, but flagged.
        let slow = make(5, 10_000, 0.25);
        let report = diff(&base, &slow, &DiffOptions::default());
        assert!(report.ok(), "{}", report.text);
        assert!(!report.advisories.is_empty(), "{}", report.text);

        // Different counter total: deterministic failure.
        let drifted = make(6, 1000, 0.25);
        let report = diff(&base, &drifted, &DiffOptions::default());
        assert!(!report.ok());
        assert!(
            report.failures[0].contains("counter.sweeps"),
            "{:?}",
            report.failures
        );

        // Different deterministic histogram bin: failure.
        let moved = make(5, 1000, 0.5);
        let report = diff(&base, &moved, &DiffOptions::default());
        assert!(
            report.failures.iter().any(|f| f.contains("hist.reduction")),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn diff_tolerates_pre_schema3_artifacts() {
        let old = Artifact::load_jsonl(concat!(
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/2\"}\n",
            "{\"kind\":\"span\",\"path\":\"solve\",\"name\":\"solve\",\"id\":1,",
            "\"parent\":0,\"tid\":0,\"nanos\":500,\"depth\":1,\"t\":1}\n",
        ))
        .unwrap();
        assert_eq!(old.spans["solve"].allocs, 0);
        let report = diff(&old, &old, &DiffOptions::default());
        assert!(report.ok(), "{}", report.text);
        assert!(!report.text.contains("span memory"), "{}", report.text);
    }

    #[test]
    fn diff_spans_mixed_schema_versions() {
        // The same facts recorded under /2, /3, and /4 metas: sections
        // that a schema lacks (memory fields, profile lines) must
        // default to empty, never error, and never fail the diff.
        let stream = |schema: &str, profile: bool| {
            let mut text = format!("{{\"kind\":\"meta\",\"schema\":\"{schema}\"}}\n");
            text.push_str(concat!(
                "{\"kind\":\"span\",\"path\":\"solve\",\"name\":\"solve\",\"id\":1,",
                "\"parent\":0,\"tid\":0,\"nanos\":500,\"depth\":1,\"t\":1}\n",
                "{\"kind\":\"counter\",\"name\":\"iters\",\"delta\":3,\"t\":2}\n",
            ));
            if profile {
                text.push_str(
                    "{\"kind\":\"profile\",\"stack\":\"solve;cycle\",\"count\":40,\"t\":3}\n",
                );
            }
            Artifact::load_jsonl(&text).unwrap()
        };
        let v2 = stream("stochcdr-obs/2", false);
        let v3 = stream("stochcdr-obs/3", false);
        let v4 = stream("stochcdr-obs/4", true);
        assert!(v2.profile.is_empty() && v3.profile.is_empty());
        assert_eq!(v4.profile["solve;cycle"], 40);

        for (base, fresh) in [(&v2, &v3), (&v2, &v4), (&v3, &v4), (&v4, &v2)] {
            let report = diff(base, fresh, &DiffOptions::default());
            assert!(
                report.ok(),
                "{} vs {} must not fail:\n{}",
                base.schema,
                fresh.schema,
                report.text
            );
        }
        // A profile-bearing diff renders its advisory section; one
        // without profile data on either side omits it entirely.
        let report = diff(&v3, &v4, &DiffOptions::default());
        assert!(
            report.text.contains("profile (advisory)"),
            "{}",
            report.text
        );
        let report = diff(&v2, &v3, &DiffOptions::default());
        assert!(!report.text.contains("profile"), "{}", report.text);
    }

    #[test]
    fn diff_treats_heartbeat_events_as_advisory() {
        // Two runs of the same solve on differently loaded machines
        // emit different numbers of interval-throttled solve.progress
        // events; that must never be a deterministic failure, while a
        // drifted count of any *other* event still is.
        let make = |progress: u64, converged: u64| {
            let mut text = String::from("{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/4\"}\n");
            for _ in 0..progress {
                text.push_str(
                    "{\"kind\":\"event\",\"name\":\"solve.progress\",\"fields\":{},\"t\":1}\n",
                );
            }
            for _ in 0..converged {
                text.push_str(
                    "{\"kind\":\"event\",\"name\":\"multigrid.converged\",\"fields\":{},\"t\":2}\n",
                );
            }
            Artifact::load_jsonl(&text).unwrap()
        };
        let base = make(12, 1);
        let fresh = make(3, 1);
        let report = diff(&base, &fresh, &DiffOptions::default());
        assert!(report.ok(), "{}", report.text);
        assert!(
            report
                .advisories
                .iter()
                .any(|a| a.contains("solve.progress")),
            "{:?}",
            report.advisories
        );

        // Same heartbeat drift plus a real event mismatch: still fails.
        let drifted = make(3, 2);
        let report = diff(&base, &drifted, &DiffOptions::default());
        assert!(!report.ok());
        assert!(
            report
                .failures
                .iter()
                .all(|f| !f.contains("solve.progress")),
            "heartbeat counts must never be failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn detects_artifact_shape() {
        assert!(looks_like_trace("  [\n{}\n]"));
        assert!(!looks_like_trace("{\"kind\":\"meta\"}"));
    }
}
