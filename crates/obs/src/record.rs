//! The record types flowing from instrumented code into sinks.

/// A single metric value.
///
/// Numeric variants are plain copies — building a `&[("k", v.into())]`
/// field slice on the stack performs no heap allocation, which is what
/// keeps disabled-path instrumentation allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (allocates; prefer numeric values on hot paths).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One instrumentation record, borrowed from the emitting site.
#[derive(Debug, Clone, PartialEq)]
pub enum Record<'a> {
    /// A completed span: `path` is the `/`-joined name stack
    /// (e.g. `multigrid.solve/multigrid.cycle`).
    Span {
        /// Full span path, outermost first.
        path: &'a str,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
        /// Nesting depth (1 = top level).
        depth: usize,
    },
    /// A monotone counter increment.
    Counter {
        /// Counter name.
        name: &'a str,
        /// Increment (counters only go up).
        delta: u64,
    },
    /// A point-in-time measurement.
    Gauge {
        /// Gauge name.
        name: &'a str,
        /// Measured value.
        value: f64,
    },
    /// A structured event with named fields.
    Event {
        /// Event name.
        name: &'a str,
        /// Field key/value pairs.
        fields: &'a [(&'a str, Value)],
    },
}

impl Record<'_> {
    /// The record's name (span path, counter/gauge/event name).
    pub fn name(&self) -> &str {
        match self {
            Record::Span { path, .. } => path,
            Record::Counter { name, .. }
            | Record::Gauge { name, .. }
            | Record::Event { name, .. } => name,
        }
    }
}
