//! The record types flowing from instrumented code into sinks.

/// A single metric value.
///
/// Numeric variants are plain copies — building a `&[("k", v.into())]`
/// field slice on the stack performs no heap allocation, which is what
/// keeps disabled-path instrumentation allocation-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (allocates; prefer numeric values on hot paths).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One instrumentation record, borrowed from the emitting site.
#[derive(Debug, Clone, PartialEq)]
pub enum Record<'a> {
    /// A span just opened. Streaming sinks that need both edges (the
    /// Chrome trace exporter) consume this; aggregating sinks ignore it
    /// and wait for the matching [`Record::Span`].
    SpanBegin {
        /// Span name (the leaf, not the full path).
        name: &'a str,
        /// Process-unique span id.
        id: u64,
        /// Id of the enclosing span (0 = root). May live on another
        /// thread when the span was opened with an explicit parent.
        parent: u64,
        /// Lane/thread id of the opening thread.
        tid: u64,
        /// Nesting depth on the opening thread (1 = top level).
        depth: usize,
    },
    /// A completed span: `path` is the `/`-joined name stack
    /// (e.g. `multigrid.solve/multigrid.cycle`).
    Span {
        /// Full span path on the owning thread, outermost first.
        path: &'a str,
        /// Span name (the leaf of `path`).
        name: &'a str,
        /// Process-unique span id (matches the [`Record::SpanBegin`]).
        id: u64,
        /// Id of the enclosing span (0 = root).
        parent: u64,
        /// Lane/thread id of the owning thread.
        tid: u64,
        /// Wall-clock duration in nanoseconds.
        nanos: u64,
        /// Nesting depth (1 = top level).
        depth: usize,
        /// Heap bytes allocated on the owning thread while the span was
        /// open (0 without a [`crate::mem::TrackingAlloc`]). New in
        /// schema `stochcdr-obs/3`.
        alloc_bytes: u64,
        /// Allocation count charged to the span on its own thread (0
        /// without a tracking allocator). New in `stochcdr-obs/3`.
        allocs: u64,
    },
    /// A monotone counter increment.
    Counter {
        /// Counter name.
        name: &'a str,
        /// Increment (counters only go up).
        delta: u64,
    },
    /// A point-in-time measurement.
    Gauge {
        /// Gauge name.
        name: &'a str,
        /// Measured value.
        value: f64,
    },
    /// A structured event with named fields.
    Event {
        /// Event name.
        name: &'a str,
        /// Field key/value pairs.
        fields: &'a [(&'a str, Value)],
    },
    /// One observation for a log-binned histogram (see
    /// [`crate::hist::LogHist`]). Sinks aggregate; the emitting site
    /// ships only the raw value, so hot loops stay allocation-free.
    Histogram {
        /// Histogram name.
        name: &'a str,
        /// Observed value.
        value: f64,
    },
    /// One aggregated wall-clock profile stack from the sampling
    /// profiler (see [`crate::profile`]), flushed at sampler stop. New
    /// in schema `stochcdr-obs/4`. Counts are nondeterministic (they
    /// depend on scheduling), so the artifact diff treats this section
    /// as advisory.
    ProfileSample {
        /// Folded stack: `;`-joined span names, outermost first (the
        /// flamegraph.pl / speedscope "folded" frame format).
        stack: &'a str,
        /// Samples attributed to this exact stack.
        count: u64,
    },
}

impl Record<'_> {
    /// The record's name (span path, counter/gauge/event/histogram name).
    pub fn name(&self) -> &str {
        match self {
            Record::Span { path, .. } => path,
            Record::ProfileSample { stack, .. } => stack,
            Record::SpanBegin { name, .. }
            | Record::Counter { name, .. }
            | Record::Gauge { name, .. }
            | Record::Event { name, .. }
            | Record::Histogram { name, .. } => name,
        }
    }
}
