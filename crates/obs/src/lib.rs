//! `stochcdr-obs` — zero-dependency instrumentation facade for the
//! stochcdr workspace.
//!
//! Library crates call the free functions in this module — [`span`],
//! [`counter`], [`gauge`], [`event`], [`histogram`] — unconditionally.
//! When no sink is installed (the default) every call reduces to a
//! single relaxed atomic load and performs **no heap allocation**, so
//! instrumented hot loops pay effectively nothing. When a [`Sink`] is
//! installed via [`install`], records flow to it tagged with nanoseconds
//! since installation.
//!
//! ```
//! let _ = stochcdr_obs::uninstall();
//! stochcdr_obs::install(Box::new(stochcdr_obs::SummarySink::new()));
//! {
//!     let _outer = stochcdr_obs::span("solve");
//!     for i in 0..3u64 {
//!         let _inner = stochcdr_obs::span("cycle");
//!         stochcdr_obs::counter("sweeps", 2);
//!         stochcdr_obs::histogram("residual_reduction", 0.25);
//!         stochcdr_obs::event("cycle.done", &[("cycle", i.into())]);
//!     }
//! }
//! let report = stochcdr_obs::uninstall().unwrap().finish().unwrap();
//! assert!(report.contains("sweeps"));
//! assert!(report.contains("residual_reduction"));
//! ```
//!
//! Call sites that would need to build owned data (e.g. `format!`ed
//! names) must gate that work behind [`enabled`]. Numeric-field events
//! built with `&[("k", v.into())]` are allocation-free and need no
//! gate.
//!
//! # Hierarchical, thread-aware spans
//!
//! Every thread keeps its own span stack, so concurrent spans from
//! parallel workers never interleave their paths. Each span carries a
//! process-unique id, its parent's id, and the emitting thread's lane
//! id ([`thread_id`]); worker code can attribute its spans to a span on
//! *another* thread with [`span_child_of`] + [`current_span_id`], which
//! is how `linalg::par` links pool-worker lanes to the caller's scope.
//! The [`ChromeTraceSink`] turns the begin/end stream into a Chrome
//! Trace Event file viewable in Perfetto or `chrome://tracing`.

#![warn(missing_docs)]

pub mod artifact;
pub mod heartbeat;
pub mod hist;
pub mod json;
pub mod mem;
pub mod profile;
mod record;
mod sink;
mod trace;

pub use heartbeat::Heartbeat;
pub use hist::LogHist;
pub use record::{Record, Value};
pub use sink::{JsonLinesSink, MultiSink, NullSink, Sink, SummarySink, SCHEMA_VERSION};
pub use trace::ChromeTraceSink;

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Fast-path flag: true iff a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

static STATE: Mutex<Option<Recorder>> = Mutex::new(None);

/// Monotone install counter; also readable without the state lock so
/// thread-local stacks can detect entries from torn-down sessions.
static SESSION_COUNTER: AtomicU64 = AtomicU64::new(1);
static CURRENT_SESSION: AtomicU64 = AtomicU64::new(0);

/// Process-unique span ids (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Lane ids handed to threads on first use (0 is usually the main
/// thread — whichever thread touches the recorder first).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

struct Recorder {
    sink: Box<dyn Sink>,
    epoch: Instant,
    session: u64,
    /// Every currently *open* span, by id: its full `/`-joined path and
    /// the lane id of the thread that opened it. Because a child's path
    /// is looked up through its parent **id** (not the opening thread's
    /// stack), a span opened on a pool worker with [`span_child_of`]
    /// inherits the dispatching span's path and lands under it in
    /// path-grouped reports, instead of orphaned at top level. Entries
    /// are removed when their span closes; the map dies with the
    /// recorder at session end. The lane id lets [`open_span_stacks`]
    /// reconstruct a per-thread view of what is executing *right now* —
    /// the sampling profiler's data source.
    paths: HashMap<u64, OpenSpan>,
}

/// Registry entry for one open span (see [`Recorder::paths`]).
struct OpenSpan {
    path: String,
    tid: u64,
}

#[derive(Clone, Copy)]
struct StackEntry {
    name: &'static str,
    id: u64,
    session: u64,
}

#[derive(Default)]
struct ThreadState {
    /// Lane id assigned from [`NEXT_THREAD_ID`] on first use.
    tid: Option<u64>,
    /// Explicit lane override (worker pools pin stable lane numbers).
    lane: Option<u64>,
    /// Open spans on this thread, outermost first.
    stack: Vec<StackEntry>,
}

thread_local! {
    static THREAD: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

/// Installs `sink` as the global record consumer, enabling
/// instrumentation. Replaces (and finishes) any previously installed
/// sink, returning it.
pub fn install(sink: Box<dyn Sink>) -> Option<Box<dyn Sink>> {
    let mut guard = STATE.lock().unwrap();
    let prev = guard.take().map(|mut r| {
        r.sink.finish();
        r.sink
    });
    let session = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
    CURRENT_SESSION.store(session, Ordering::Relaxed);
    *guard = Some(Recorder {
        sink,
        epoch: Instant::now(),
        session,
        paths: HashMap::new(),
    });
    ENABLED.store(true, Ordering::Release);
    prev
}

/// Uninstalls the current sink (calling its [`Sink::finish`]) and
/// disables instrumentation. Returns the sink for inspection.
pub fn uninstall() -> Option<Box<dyn Sink>> {
    let mut guard = STATE.lock().unwrap();
    ENABLED.store(false, Ordering::Release);
    CURRENT_SESSION.store(0, Ordering::Relaxed);
    guard.take().map(|mut r| {
        r.sink.finish();
        r.sink
    })
}

/// Whether a sink is currently installed. Call sites gate any
/// allocating record-preparation work behind this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// This thread's lane id: the explicit [`lane`] override if one is
/// active, else a stable id assigned on first use (0 for the first
/// thread that asks — normally `main`).
pub fn thread_id() -> u64 {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(lane) = t.lane {
            return lane;
        }
        *t.tid
            .get_or_insert_with(|| NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed))
    })
}

/// Restores the previous lane override when dropped.
#[derive(Debug)]
pub struct LaneGuard {
    prev: Option<u64>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        THREAD.with(|t| t.borrow_mut().lane = self.prev);
    }
}

/// Pins this thread's lane id for the guard's lifetime.
///
/// Worker pools use this to give scoped threads *stable* trace lanes
/// (worker k → lane k+1) instead of a fresh id per spawn, which would
/// scatter a long run over thousands of one-shot lanes.
pub fn lane(lane: u64) -> LaneGuard {
    THREAD.with(|t| {
        let mut t = t.borrow_mut();
        let prev = t.lane.replace(lane);
        LaneGuard { prev }
    })
}

/// Whether an explicit lane override is active on this thread.
pub fn has_lane() -> bool {
    THREAD.with(|t| t.borrow().lane.is_some())
}

/// Id of this thread's innermost open span (0 when none). Capture this
/// before handing work to another thread, then open the worker's spans
/// with [`span_child_of`] to keep the cross-thread parent linkage.
pub fn current_span_id() -> u64 {
    let session = CURRENT_SESSION.load(Ordering::Relaxed);
    if session == 0 {
        return 0;
    }
    THREAD.with(|t| {
        t.borrow()
            .stack
            .last()
            .filter(|e| e.session == session)
            .map_or(0, |e| e.id)
    })
}

/// An open span; records its wall-clock duration when dropped.
///
/// Created by [`span`] / [`span_child_of`]. Inactive guards
/// (instrumentation disabled at entry) are inert.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    /// 0 marks an inactive guard.
    id: u64,
    parent: u64,
    tid: u64,
    session: u64,
    start: Instant,
    /// This thread's allocation counters at open; the drop delta is the
    /// span's charged memory (zero without a tracking allocator).
    mem: mem::ThreadAllocMark,
}

/// Opens a named span nested under this thread's innermost open span.
///
/// The returned guard records a [`Record::Span`] with the `/`-joined
/// path of this thread's open span names when it is dropped, plus the
/// span's id, parent id, and lane id for trace reconstruction.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    open_span(name, None)
}

/// Opens a named span whose parent is an explicit span id — usually one
/// captured on *another* thread with [`current_span_id`].
///
/// The span's recorded path extends the parent span's path (a
/// `par.worker` span opened on a pool thread lands under the kernel
/// scope that dispatched it, not at top level), while its lane still
/// reflects the opening thread.
#[inline]
pub fn span_child_of(name: &'static str, parent: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    open_span(name, Some(parent))
}

fn open_span(name: &'static str, parent: Option<u64>) -> SpanGuard {
    let mut guard = STATE.lock().unwrap();
    let Some(rec) = guard.as_mut() else {
        return SpanGuard::inert();
    };
    let session = rec.session;
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, tid) = THREAD.with(|t| {
        let mut t = t.borrow_mut();
        // Entries from torn-down sessions are dead weight: their guards
        // will unwind by id (or never), so drop them before nesting.
        t.stack.retain(|e| e.session == session);
        let parent = parent.or_else(|| t.stack.last().map(|e| e.id)).unwrap_or(0);
        t.stack.push(StackEntry { name, id, session });
        let tid = if let Some(lane) = t.lane {
            lane
        } else {
            *t.tid
                .get_or_insert_with(|| NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed))
        };
        (parent, tid)
    });
    // Resolve the path through the parent *id*: for same-thread nesting
    // this reproduces the thread stack's joined names, and for an
    // explicit cross-thread parent it attributes the span to the scope
    // that dispatched the work.
    let path = match rec.paths.get(&parent) {
        Some(p) => format!("{}/{name}", p.path),
        None => name.to_string(),
    };
    let depth = path.split('/').count();
    let at = rec.epoch.elapsed().as_nanos() as u64;
    rec.sink.record(
        at,
        &Record::SpanBegin {
            name,
            id,
            parent,
            tid,
            depth,
        },
    );
    rec.paths.insert(id, OpenSpan { path, tid });
    SpanGuard {
        id,
        parent,
        tid,
        session,
        start: Instant::now(),
        mem: mem::thread_mark(),
    }
}

impl SpanGuard {
    fn inert() -> SpanGuard {
        // The clock read is a cheap vDSO call and the guard performs no
        // work on drop. No allocation either way.
        SpanGuard {
            id: 0,
            parent: 0,
            tid: 0,
            session: 0,
            start: Instant::now(),
            mem: mem::thread_mark(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let nanos = self.start.elapsed().as_nanos() as u64;
        let (alloc_bytes, allocs) = self.mem.delta();
        // Unwind this thread's stack to (and including) our entry even if
        // the session already ended — a leaked entry would corrupt later
        // paths. Spans opened after us that leaked (mem::forget) unwind
        // with us, unrecorded.
        let popped = THREAD.with(|t| {
            let mut t = t.borrow_mut();
            let idx = t.stack.iter().rposition(|e| e.id == self.id)?;
            let path_names: Vec<&'static str> = t.stack[..=idx].iter().map(|e| e.name).collect();
            t.stack.truncate(idx);
            Some(path_names)
        });
        let Some(path_names) = popped else { return };
        if !enabled() {
            return;
        }
        let mut guard = STATE.lock().unwrap();
        let Some(rec) = guard.as_mut() else { return };
        if rec.session != self.session {
            // The sink changed under us; nothing sensible to record.
            return;
        }
        let name = path_names.last().copied().unwrap_or("");
        // Prefer the path registered at open (which resolves cross-thread
        // parent linkage); the thread-local join is the fallback for
        // guards whose open predated the registry (defensive only).
        let path = rec
            .paths
            .remove(&self.id)
            .map(|o| o.path)
            .unwrap_or_else(|| path_names.join("/"));
        let depth = path.split('/').count();
        let at = rec.epoch.elapsed().as_nanos() as u64;
        rec.sink.record(
            at,
            &Record::Span {
                path: &path,
                name,
                id: self.id,
                parent: self.parent,
                tid: self.tid,
                nanos,
                depth,
                alloc_bytes,
                allocs,
            },
        );
    }
}

/// Snapshot of every thread's innermost *open* span: `(lane id, full
/// span path)` pairs, one per lane with at least one span open right
/// now. Empty when no sink is installed.
///
/// Per-thread span guards are strictly LIFO-scoped and span ids are
/// globally monotone, so within one lane the innermost open span is the
/// entry with the largest id — no per-thread stack walk is needed; the
/// open-span registry alone reconstructs the live leaf of every lane.
/// Spans opened with [`span_child_of`] are reported under the *opening*
/// thread's lane (their path still resolves through the cross-thread
/// parent), which is exactly the attribution a wall-clock sampler
/// wants. This is the [`profile`] sampler's data source; the snapshot
/// holds the recorder lock only long enough to copy the paths out.
pub fn open_span_stacks() -> Vec<(u64, String)> {
    let guard = STATE.lock().unwrap();
    let Some(rec) = guard.as_ref() else {
        return Vec::new();
    };
    let mut tops: HashMap<u64, (u64, &str)> = HashMap::new();
    for (&id, open) in &rec.paths {
        let top = tops.entry(open.tid).or_insert((id, &open.path));
        if id >= top.0 {
            *top = (id, &open.path);
        }
    }
    let mut out: Vec<(u64, String)> = tops
        .into_iter()
        .map(|(tid, (_, path))| (tid, path.to_string()))
        .collect();
    out.sort_unstable();
    out
}

/// Records one folded profile stack with its accumulated sample count.
/// The [`profile`] sampler flushes its aggregate through this at stop;
/// sinks treat the records as a distinct `profile` section.
#[inline]
pub fn profile_sample(stack: &str, count: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::ProfileSample { stack, count }));
}

/// Increments a named counter by `delta`.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::Counter { name, delta }));
}

/// Records a point-in-time gauge measurement.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::Gauge { name, value }));
}

/// Records one observation into a log-binned histogram.
///
/// Use this instead of [`gauge`] for hot repeated measurements (per-cycle
/// residual-reduction factors, SpMV latency, shard throughput): sinks
/// aggregate the observations into a [`LogHist`] and report
/// count/p50/p95/max instead of a lossy last-write-wins value.
#[inline]
pub fn histogram(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::Histogram { name, value }));
}

/// Records a structured event. Build numeric fields on the stack:
/// `obs::event("cycle.done", &[("residual", res.into())])` — this
/// allocates nothing when instrumentation is disabled.
#[inline]
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::Event { name, fields }));
}

fn with_recorder(f: impl FnOnce(&mut Recorder, u64)) {
    let mut guard = STATE.lock().unwrap();
    if let Some(rec) = guard.as_mut() {
        let at = rec.epoch.elapsed().as_nanos() as u64;
        f(rec, at);
    }
}
