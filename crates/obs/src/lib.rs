//! `stochcdr-obs` — zero-dependency instrumentation facade for the
//! stochcdr workspace.
//!
//! Library crates call the free functions in this module — [`span`],
//! [`counter`], [`gauge`], [`event`] — unconditionally. When no sink is
//! installed (the default) every call reduces to a single relaxed
//! atomic load and performs **no heap allocation**, so instrumented hot
//! loops pay effectively nothing. When a [`Sink`] is installed via
//! [`install`], records flow to it tagged with nanoseconds since
//! installation.
//!
//! ```
//! let _ = stochcdr_obs::uninstall();
//! stochcdr_obs::install(Box::new(stochcdr_obs::SummarySink::new()));
//! {
//!     let _outer = stochcdr_obs::span("solve");
//!     for i in 0..3u64 {
//!         let _inner = stochcdr_obs::span("cycle");
//!         stochcdr_obs::counter("sweeps", 2);
//!         stochcdr_obs::event("cycle.done", &[("cycle", i.into())]);
//!     }
//! }
//! let report = stochcdr_obs::uninstall().unwrap().finish().unwrap();
//! assert!(report.contains("sweeps"));
//! ```
//!
//! Call sites that would need to build owned data (e.g. `format!`ed
//! names) must gate that work behind [`enabled`]. Numeric-field events
//! built with `&[("k", v.into())]` are allocation-free and need no
//! gate.
//!
//! The recorder keeps one global span stack: it assumes instrumented
//! regions run on one thread at a time (true for the single-threaded
//! solvers here). Concurrent spans from multiple threads are recorded
//! safely but may interleave their paths.

#![warn(missing_docs)]

pub mod json;
mod record;
mod sink;

pub use record::{Record, Value};
pub use sink::{JsonLinesSink, NullSink, Sink, SummarySink, SCHEMA_VERSION};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Fast-path flag: true iff a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

static STATE: Mutex<Option<Recorder>> = Mutex::new(None);

struct Recorder {
    sink: Box<dyn Sink>,
    /// Names of currently-open spans, outermost first.
    stack: Vec<&'static str>,
    epoch: Instant,
    /// Incremented on every install; guards against span guards that
    /// outlive the sink they were opened under.
    session: u64,
}

/// Installs `sink` as the global record consumer, enabling
/// instrumentation. Replaces (and finishes) any previously installed
/// sink, returning it.
pub fn install(sink: Box<dyn Sink>) -> Option<Box<dyn Sink>> {
    let mut guard = STATE.lock().unwrap();
    let prev = guard.take().map(|mut r| {
        r.sink.finish();
        r.sink
    });
    let session = SESSION_COUNTER.fetch_add(1, Ordering::Relaxed);
    *guard = Some(Recorder {
        sink,
        stack: Vec::with_capacity(8),
        epoch: Instant::now(),
        session,
    });
    ENABLED.store(true, Ordering::Release);
    prev
}

static SESSION_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Uninstalls the current sink (calling its [`Sink::finish`]) and
/// disables instrumentation. Returns the sink for inspection.
pub fn uninstall() -> Option<Box<dyn Sink>> {
    let mut guard = STATE.lock().unwrap();
    ENABLED.store(false, Ordering::Release);
    guard.take().map(|mut r| {
        r.sink.finish();
        r.sink
    })
}

/// Whether a sink is currently installed. Call sites gate any
/// allocating record-preparation work behind this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An open span; records its wall-clock duration when dropped.
///
/// Created by [`span`]. Inactive guards (instrumentation disabled at
/// entry) are inert.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    /// Depth of this span in the stack at open time (1-based); 0 marks
    /// an inactive guard.
    depth: usize,
    session: u64,
    start: Instant,
}

/// Opens a named span. The returned guard records a
/// [`Record::Span`] with the `/`-joined path of all open span names
/// when it is dropped.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        // Inactive guard: the clock read is a cheap vDSO call and the
        // guard performs no work on drop. No allocation either way.
        return SpanGuard {
            depth: 0,
            session: 0,
            start: Instant::now(),
        };
    }
    let mut guard = STATE.lock().unwrap();
    match guard.as_mut() {
        Some(rec) => {
            rec.stack.push(name);
            SpanGuard {
                depth: rec.stack.len(),
                session: rec.session,
                start: Instant::now(),
            }
        }
        None => SpanGuard {
            depth: 0,
            session: 0,
            start: Instant::now(),
        },
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == 0 || !enabled() {
            return;
        }
        let nanos = self.start.elapsed().as_nanos() as u64;
        let mut guard = STATE.lock().unwrap();
        let Some(rec) = guard.as_mut() else { return };
        if rec.session != self.session || rec.stack.len() < self.depth {
            // The sink changed, or the stack was already unwound past
            // us (out-of-order drop); nothing sensible to record.
            return;
        }
        // Drop any spans opened after us that leaked (e.g. via
        // std::mem::forget), then pop ourselves.
        rec.stack.truncate(self.depth);
        let path = rec.stack.join("/");
        rec.stack.pop();
        let at = rec.epoch.elapsed().as_nanos() as u64;
        rec.sink.record(
            at,
            &Record::Span {
                path: &path,
                nanos,
                depth: self.depth,
            },
        );
    }
}

/// Increments a named counter by `delta`.
#[inline]
pub fn counter(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::Counter { name, delta }));
}

/// Records a point-in-time gauge measurement.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::Gauge { name, value }));
}

/// Records a structured event. Build numeric fields on the stack:
/// `obs::event("cycle.done", &[("residual", res.into())])` — this
/// allocates nothing when instrumentation is disabled.
#[inline]
pub fn event(name: &str, fields: &[(&str, Value)]) {
    if !enabled() {
        return;
    }
    with_recorder(|rec, at| rec.sink.record(at, &Record::Event { name, fields }));
}

fn with_recorder(f: impl FnOnce(&mut Recorder, u64)) {
    let mut guard = STATE.lock().unwrap();
    if let Some(rec) = guard.as_mut() {
        let at = rec.epoch.elapsed().as_nanos() as u64;
        f(rec, at);
    }
}
