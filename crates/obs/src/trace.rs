//! Chrome Trace Event Format exporter.
//!
//! [`ChromeTraceSink`] streams span begin/end edges, counters, gauges,
//! and events as a JSON array of trace events that Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing` open directly.
//! Spans become `B`/`E` duration events on per-thread lanes; counters
//! and gauges become `C` counter tracks; events become instants.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::json;
use crate::record::{Record, Value};
use crate::sink::Sink;

/// Streams records as Chrome Trace Event Format JSON (an array of
/// event objects). The output is valid JSON once [`Sink::finish`] has
/// closed the array; finish is idempotent.
pub struct ChromeTraceSink {
    w: Box<dyn Write + Send>,
    line: String,
    wrote_any: bool,
    closed: bool,
    named_tids: BTreeSet<u64>,
    /// Cumulative counter values — Chrome counter tracks plot absolute
    /// values, while [`Record::Counter`] carries deltas.
    counters: BTreeMap<String, u64>,
}

impl std::fmt::Debug for ChromeTraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceSink").finish_non_exhaustive()
    }
}

impl ChromeTraceSink {
    /// Wraps an arbitrary writer.
    pub fn new(mut w: Box<dyn Write + Send>) -> Self {
        let _ = w.write_all(b"[\n");
        ChromeTraceSink {
            w,
            line: String::with_capacity(256),
            wrote_any: false,
            closed: false,
            named_tids: BTreeSet::new(),
            counters: BTreeMap::new(),
        }
    }

    /// Opens `path` for writing (truncating) and streams the trace there.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    fn emit(&mut self) {
        if self.wrote_any {
            let _ = self.w.write_all(b",\n");
        }
        self.wrote_any = true;
        let _ = self.w.write_all(self.line.as_bytes());
    }

    /// Emits a one-time thread-name metadata event so trace viewers
    /// label the lane (lane 0 is the installing/main thread; workers
    /// get stable `worker-k` lanes from `linalg::par`).
    fn name_tid(&mut self, tid: u64) {
        if !self.named_tids.insert(tid) {
            return;
        }
        let label = if tid == 0 {
            "main".to_string()
        } else {
            format!("worker-{tid}")
        };
        self.line.clear();
        let _ = write!(
            self.line,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        );
        self.emit();
    }

    fn push_value(line: &mut String, v: &Value) {
        match v {
            Value::U64(x) => {
                let _ = write!(line, "{x}");
            }
            Value::I64(x) => {
                let _ = write!(line, "{x}");
            }
            Value::F64(x) => json::write_f64(line, *x),
            Value::Bool(x) => {
                let _ = write!(line, "{x}");
            }
            Value::Str(x) => json::escape_into(line, x),
        }
    }
}

/// Trace timestamps are microseconds; keep nanosecond precision as a
/// fraction.
fn push_ts(line: &mut String, at_nanos: u64) {
    let _ = write!(line, "{}.{:03}", at_nanos / 1_000, at_nanos % 1_000);
}

impl Sink for ChromeTraceSink {
    fn record(&mut self, at_nanos: u64, record: &Record<'_>) {
        if self.closed {
            return;
        }
        match record {
            Record::SpanBegin {
                name,
                id,
                parent,
                tid,
                ..
            } => {
                self.name_tid(*tid);
                let (id, parent, tid) = (*id, *parent, *tid);
                self.line.clear();
                self.line.push_str("{\"name\":");
                json::escape_into(&mut self.line, name);
                let _ = write!(
                    self.line,
                    ",\"cat\":\"span\",\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":"
                );
                push_ts(&mut self.line, at_nanos);
                let _ = write!(self.line, ",\"args\":{{\"id\":{id},\"parent\":{parent}}}}}");
                self.emit();
            }
            Record::Span { name, tid, .. } => {
                let tid = *tid;
                self.line.clear();
                self.line.push_str("{\"name\":");
                json::escape_into(&mut self.line, name);
                let _ = write!(
                    self.line,
                    ",\"cat\":\"span\",\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":"
                );
                push_ts(&mut self.line, at_nanos);
                self.line.push('}');
                self.emit();
            }
            Record::Counter { name, delta } => {
                let total = {
                    let slot = self.counters.entry((*name).to_string()).or_insert(0);
                    *slot += delta;
                    *slot
                };
                self.line.clear();
                self.line.push_str("{\"name\":");
                json::escape_into(&mut self.line, name);
                self.line
                    .push_str(",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
                push_ts(&mut self.line, at_nanos);
                let _ = write!(self.line, ",\"args\":{{\"value\":{total}}}}}");
                self.emit();
            }
            Record::Gauge { name, value } => {
                self.line.clear();
                self.line.push_str("{\"name\":");
                json::escape_into(&mut self.line, name);
                self.line
                    .push_str(",\"cat\":\"gauge\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":");
                push_ts(&mut self.line, at_nanos);
                self.line.push_str(",\"args\":{\"value\":");
                json::write_f64(&mut self.line, *value);
                self.line.push_str("}}");
                self.emit();
            }
            Record::Event { name, fields } => {
                self.line.clear();
                self.line.push_str("{\"name\":");
                json::escape_into(&mut self.line, name);
                self.line.push_str(
                    ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":",
                );
                push_ts(&mut self.line, at_nanos);
                self.line.push_str(",\"args\":{");
                let mut line = std::mem::take(&mut self.line);
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    json::escape_into(&mut line, k);
                    line.push(':');
                    Self::push_value(&mut line, v);
                }
                line.push_str("}}");
                self.line = line;
                self.emit();
            }
            // Histogram observations and aggregated profile stacks have
            // no trace representation; the metrics sinks handle them.
            Record::Histogram { .. } | Record::ProfileSample { .. } => {}
        }
    }

    fn finish(&mut self) -> Option<String> {
        if !self.closed {
            self.closed = true;
            let _ = self.w.write_all(b"\n]\n");
        }
        let _ = self.w.flush();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::sync::{Arc, Mutex};

    struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuffer {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn trace_is_valid_json_with_balanced_edges() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = ChromeTraceSink::new(Box::new(SharedBuffer(Arc::clone(&buf))));
        sink.record(
            1_500,
            &Record::SpanBegin {
                name: "solve",
                id: 1,
                parent: 0,
                tid: 0,
                depth: 1,
            },
        );
        sink.record(
            2_000,
            &Record::Counter {
                name: "sweeps",
                delta: 2,
            },
        );
        sink.record(
            2_500,
            &Record::Counter {
                name: "sweeps",
                delta: 3,
            },
        );
        sink.record(
            3_000,
            &Record::Span {
                path: "solve",
                name: "solve",
                id: 1,
                parent: 0,
                tid: 0,
                nanos: 1_500,
                depth: 1,
                alloc_bytes: 0,
                allocs: 0,
            },
        );
        sink.finish();
        sink.finish(); // idempotent
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let parsed = Json::parse(&text).unwrap();
        let Json::Arr(events) = parsed else {
            panic!("trace must be a JSON array");
        };
        // thread_name metadata + B + 2×C + E
        assert_eq!(events.len(), 5);
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
        // Counter track carries cumulative values.
        let last_counter = events
            .iter()
            .rev()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .unwrap();
        assert_eq!(
            last_counter
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        // Timestamps are microseconds with sub-µs precision.
        assert!(text.contains("\"ts\":1.500"), "{text}");
    }
}
