//! Wall-clock **sampling profiler** — statistical CPU attribution with
//! zero dependencies and no signal handlers.
//!
//! A background thread wakes at a fixed interval, snapshots every
//! thread's innermost open span via [`crate::open_span_stacks`] (the
//! open-span registry already resolves full paths through parent ids,
//! including cross-thread `span_child_of` linkage), and accumulates one
//! count per live stack in a folded-stack map. Because the sampler
//! reads the same registry the span guards maintain anyway, profiling
//! adds **no per-span cost** to the instrumented code — the only
//! overhead is the sampler thread briefly taking the recorder lock once
//! per interval.
//!
//! The aggregate is the classic "folded" format (`a;b;c COUNT` lines)
//! consumed by `flamegraph.pl` and speedscope; [`Profile::publish`]
//! additionally flushes it through [`crate::profile_sample`] so the
//! JSONL artifact carries a `profile` section. Sample *counts* are
//! nondeterministic (they depend on scheduling), so
//! [`crate::artifact::diff`] treats the section as advisory; stack
//! *names* come straight from the span registry and are gated by
//! `scripts/profile_smoke.sh`.
//!
//! ```
//! let _ = stochcdr_obs::uninstall();
//! stochcdr_obs::install(Box::new(stochcdr_obs::NullSink));
//! stochcdr_obs::profile::start(std::time::Duration::from_micros(200));
//! {
//!     let _s = stochcdr_obs::span("solve");
//!     std::thread::sleep(std::time::Duration::from_millis(5));
//! }
//! let profile = stochcdr_obs::profile::stop().expect("sampler was running");
//! assert!(profile.ticks > 0);
//! stochcdr_obs::uninstall();
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The running sampler, if any. One sampler per process: the registry
/// it reads is global, so concurrent samplers would just double-count.
static SAMPLER: Mutex<Option<Sampler>> = Mutex::new(None);

struct Sampler {
    stop: Arc<AtomicBool>,
    counts: Arc<Mutex<BTreeMap<String, u64>>>,
    ticks: Arc<AtomicU64>,
    join: JoinHandle<()>,
    interval: Duration,
}

/// The folded-stack aggregate collected between [`start`] and [`stop`].
#[derive(Debug, Clone)]
pub struct Profile {
    /// Folded stack (`;`-joined span names, outermost first) → samples
    /// in which that stack was some thread's live leaf.
    pub samples: BTreeMap<String, u64>,
    /// Total sampler wake-ups, including ones that observed no open
    /// span (idle ticks are not attributed to any stack).
    pub ticks: u64,
    /// The configured sampling interval.
    pub interval: Duration,
}

impl Profile {
    /// Renders the aggregate in the folded frame format understood by
    /// `flamegraph.pl` and speedscope: one `stack count` line per
    /// distinct stack, frames `;`-separated.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.samples {
            let _ = writeln!(out, "{stack} {count}");
        }
        out
    }

    /// Flushes the aggregate into the installed sink as
    /// [`crate::Record::ProfileSample`] records plus bookkeeping
    /// counters (`profile.ticks`, `profile.samples`), giving the JSONL
    /// artifact and summary report a `profile` section. No-op when
    /// instrumentation is disabled.
    pub fn publish(&self) {
        if !crate::enabled() {
            return;
        }
        for (stack, count) in &self.samples {
            crate::profile_sample(stack, *count);
        }
        crate::counter("profile.ticks", self.ticks);
        crate::counter(
            "profile.samples",
            self.samples.values().copied().sum::<u64>(),
        );
    }
}

/// Starts the sampling profiler at `interval` (clamped to ≥10 µs so a
/// zero interval cannot spin a core). Returns `false` when a sampler is
/// already running — the running one keeps collecting undisturbed.
///
/// The sampler is independent of whether a sink is installed; it reads
/// the open-span registry, which is only populated while a session is
/// active, so samples taken outside a session attribute to no stack.
pub fn start(interval: Duration) -> bool {
    let mut guard = SAMPLER.lock().unwrap();
    if guard.is_some() {
        return false;
    }
    let interval = interval.max(Duration::from_micros(10));
    let stop = Arc::new(AtomicBool::new(false));
    let counts = Arc::new(Mutex::new(BTreeMap::new()));
    let ticks = Arc::new(AtomicU64::new(0));
    let join = {
        let stop = Arc::clone(&stop);
        let counts = Arc::clone(&counts);
        let ticks = Arc::clone(&ticks);
        std::thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    ticks.fetch_add(1, Ordering::Relaxed);
                    let tops = crate::open_span_stacks();
                    if tops.is_empty() {
                        continue;
                    }
                    let mut counts = counts.lock().unwrap();
                    for (_tid, path) in tops {
                        *counts.entry(path.replace('/', ";")).or_insert(0) += 1;
                    }
                }
            })
            .expect("spawn obs-sampler thread")
    };
    *guard = Some(Sampler {
        stop,
        counts,
        ticks,
        join,
        interval,
    });
    true
}

/// Whether a sampler is currently running.
pub fn running() -> bool {
    SAMPLER.lock().unwrap().is_some()
}

/// Stops the sampler and returns its aggregate, or `None` when no
/// sampler was running. Blocks for at most one sampling interval while
/// the thread notices the stop flag.
pub fn stop() -> Option<Profile> {
    let sampler = SAMPLER.lock().unwrap().take()?;
    sampler.stop.store(true, Ordering::Relaxed);
    let _ = sampler.join.join();
    let samples = std::mem::take(&mut *sampler.counts.lock().unwrap());
    Some(Profile {
        samples,
        ticks: sampler.ticks.load(Ordering::Relaxed),
        interval: sampler.interval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folded_renders_one_line_per_stack() {
        let profile = Profile {
            samples: [("a;b".to_string(), 3), ("a".to_string(), 1)]
                .into_iter()
                .collect(),
            ticks: 4,
            interval: Duration::from_millis(1),
        };
        assert_eq!(profile.folded(), "a 1\na;b 3\n");
    }

    #[test]
    fn double_start_is_rejected_and_stop_is_idempotent() {
        // Serialize against any other test using the global sampler.
        assert!(start(Duration::from_millis(5)));
        assert!(!start(Duration::from_millis(5)), "second start must fail");
        assert!(running());
        assert!(stop().is_some());
        assert!(stop().is_none(), "stop without a sampler returns None");
        assert!(!running());
    }
}
