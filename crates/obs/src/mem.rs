//! Memory accounting: a zero-dependency tracking allocator and a soft
//! memory budget.
//!
//! [`TrackingAlloc`] wraps the system allocator and maintains process
//! totals (live bytes, cumulative bytes, allocation count, high-water
//! mark) plus per-thread monotone counters, all in atomics and
//! const-initialized thread-local cells — the hooks never lock, never
//! allocate, and never re-enter the instrumentation facade, so they are
//! safe inside `GlobalAlloc` and add only a few relaxed atomic ops per
//! allocation. Binaries opt in with:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: stochcdr_obs::mem::TrackingAlloc = stochcdr_obs::mem::TrackingAlloc::new();
//! ```
//!
//! With the allocator installed, every completed span record carries the
//! bytes and allocation count charged to it on its own thread (see
//! [`Record::Span`](crate::Record)'s `alloc_bytes`/`allocs` fields, new
//! in schema `stochcdr-obs/3`); without it the counters read zero and
//! the fields are inert. Attribution is per-thread: work a span hands to
//! pool workers is charged to the workers' own `par.worker` spans.
//!
//! The *soft* memory budget ([`set_budget`]) never fails allocations —
//! callers that are about to materialize a large intermediate (the
//! Kronecker path) ask [`check_budget`] first and refuse on their own
//! terms; the check emits a `mem.budget_exceeded` event so the refusal
//! is visible in artifacts.
//!
//! The `alloc-track` cargo feature (default on) compiles the accounting
//! in; with the feature disabled [`TrackingAlloc`] degrades to a plain
//! pass-through to [`System`] and every counter reads zero.

use std::alloc::{GlobalAlloc, Layout, System};
#[cfg(feature = "alloc-track")]
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Currently live (allocated and not yet freed) bytes.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`]; reset with [`reset_peak`].
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocation count (allocs + growing reallocs).
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocated bytes (monotone).
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
/// Soft budget in bytes; 0 = unset.
static BUDGET_BYTES: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "alloc-track")]
thread_local! {
    /// Monotone per-thread allocated bytes (const-init: no lazy branch,
    /// no allocation, safe to touch from inside the allocator).
    static T_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Monotone per-thread allocation count.
    static T_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// A tracking wrapper around the system allocator.
///
/// See the [module docs](self) for the accounting model. All methods
/// forward to [`System`]; the wrapper only updates counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAlloc;

impl TrackingAlloc {
    /// Creates the (stateless) wrapper; usable in a `static`.
    pub const fn new() -> Self {
        TrackingAlloc
    }
}

#[cfg(feature = "alloc-track")]
#[inline]
fn note_alloc(size: u64) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    // `try_with` so a dealloc-during-TLS-teardown path cannot abort; the
    // process totals above are always exact.
    let _ = T_BYTES.try_with(|c| c.set(c.get() + size));
    let _ = T_COUNT.try_with(|c| c.set(c.get() + 1));
}

#[cfg(feature = "alloc-track")]
#[inline]
fn note_dealloc(size: u64) {
    LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
}

#[cfg(not(feature = "alloc-track"))]
#[inline]
fn note_alloc(_size: u64) {}

#[cfg(not(feature = "alloc-track"))]
#[inline]
fn note_dealloc(_size: u64) {}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                // A growing realloc is an allocation event (it may move
                // and copy); count it like the counting-allocator tests
                // always did.
                note_alloc(new - old);
            } else {
                note_dealloc(old - new);
            }
        }
        p
    }
}

/// Whether a [`TrackingAlloc`] is live in this process (heuristic: any
/// allocation has been observed). Zero-allocation processes don't exist
/// in practice by the time instrumented code runs.
pub fn tracking_active() -> bool {
    ALLOC_COUNT.load(Ordering::Relaxed) > 0
}

/// Currently live heap bytes (0 unless a [`TrackingAlloc`] is installed).
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Cumulative allocation count.
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// Cumulative allocated bytes (monotone; never decremented by frees).
pub fn total_bytes() -> u64 {
    TOTAL_BYTES.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size, so a phase can
/// measure its own peak: `reset_peak(); work(); peak_bytes()`.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// A snapshot of this thread's monotone allocation counters; subtract
/// two marks to charge the interval (see [`thread_mark`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadAllocMark {
    bytes: u64,
    count: u64,
}

/// Captures this thread's current allocation counters. Allocation-free.
#[inline]
pub fn thread_mark() -> ThreadAllocMark {
    #[cfg(feature = "alloc-track")]
    {
        let bytes = T_BYTES.try_with(Cell::get).unwrap_or(0);
        let count = T_COUNT.try_with(Cell::get).unwrap_or(0);
        ThreadAllocMark { bytes, count }
    }
    #[cfg(not(feature = "alloc-track"))]
    {
        ThreadAllocMark { bytes: 0, count: 0 }
    }
}

impl ThreadAllocMark {
    /// `(bytes, allocations)` charged to this thread since the mark.
    #[inline]
    pub fn delta(&self) -> (u64, u64) {
        let now = thread_mark();
        (
            now.bytes.saturating_sub(self.bytes),
            now.count.saturating_sub(self.count),
        )
    }
}

/// Sets (or clears, with `None`) the process-wide soft memory budget.
///
/// When instrumentation is enabled the new value is published as the
/// `mem.budget_bytes` gauge (0 on clear).
pub fn set_budget(bytes: Option<u64>) {
    BUDGET_BYTES.store(bytes.unwrap_or(0), Ordering::Relaxed);
    if crate::enabled() {
        crate::gauge("mem.budget_bytes", bytes.unwrap_or(0) as f64);
    }
}

/// The current soft budget, if one is set.
pub fn budget() -> Option<u64> {
    match BUDGET_BYTES.load(Ordering::Relaxed) {
        0 => None,
        b => Some(b),
    }
}

/// Whether allocating `extra_bytes` on top of the current live size
/// would cross the soft budget. Always `false` with no budget set.
pub fn would_exceed(extra_bytes: u64) -> bool {
    match budget() {
        Some(b) => live_bytes().saturating_add(extra_bytes) > b,
        None => false,
    }
}

/// Soft-limit check for a caller about to allocate `extra_bytes` for
/// `what`: returns `true` when within budget (or no budget is set).
/// On a would-exceed it emits a `mem.budget_exceeded` event and returns
/// `false` — the caller decides whether to refuse; nothing is enforced.
pub fn check_budget(what: &str, extra_bytes: u64) -> bool {
    if !would_exceed(extra_bytes) {
        return true;
    }
    if crate::enabled() {
        crate::event(
            "mem.budget_exceeded",
            &[
                ("what", what.into()),
                ("requested_bytes", extra_bytes.into()),
                ("live_bytes", live_bytes().into()),
                ("budget_bytes", budget().unwrap_or(0).into()),
            ],
        );
    }
    false
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where unavailable. Allocates — call at
/// publish points, never from hot paths.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        proc_status_kib("VmHWM:").map_or(0, |kib| kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Resets the kernel's resident-set high-water mark so a following
/// [`peak_rss_bytes`] reads the peak of *this phase* rather than the
/// whole process history (writes `5` to `/proc/self/clear_refs`).
/// Returns `true` on success; `false` (and changes nothing) where the
/// mechanism is unavailable. The current RSS is untouched — only the
/// recorded maximum restarts from it.
pub fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

#[cfg(target_os = "linux")]
fn proc_status_kib(key: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with(key))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Publishes the process memory gauges (`mem.live_bytes`,
/// `mem.peak_bytes`, `mem.alloc_count`, `mem.peak_rss`, and
/// `mem.budget_bytes` when a budget is set) to the installed sink.
/// No-op when instrumentation is disabled.
pub fn publish() {
    if !crate::enabled() {
        return;
    }
    crate::gauge("mem.live_bytes", live_bytes() as f64);
    crate::gauge("mem.peak_bytes", peak_bytes() as f64);
    crate::gauge("mem.alloc_count", alloc_count() as f64);
    crate::gauge("mem.peak_rss", peak_rss_bytes() as f64);
    if let Some(b) = budget() {
        crate::gauge("mem.budget_bytes", b as f64);
    }
}

/// Smallest allocation-count delta observed across `attempts` runs of
/// `f` — the one allocator-assertion helper shared by the workspace's
/// no-alloc tests.
///
/// The counter is process-global, so a concurrent test-harness thread
/// can allocate inside a measurement window. A genuine allocation in
/// the code under test repeats on every attempt; harness noise does
/// not, so the minimum is the honest figure. Returns 0 vacuously when
/// no [`TrackingAlloc`] is installed — callers should assert
/// [`tracking_active`] first.
pub fn min_alloc_delta<F: FnMut()>(mut f: F, attempts: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..attempts.max(1) {
        let before = alloc_count();
        f();
        let delta = alloc_count() - before;
        best = best.min(delta);
        if best == 0 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise the budget logic and marks without relying on
    // the global allocator (the unit-test binary installs the plain
    // system allocator); allocator-integration coverage lives in
    // `tests/no_alloc.rs`, which does install [`TrackingAlloc`].

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_reset_restarts_the_high_water_mark() {
        // Push the high-water mark well above steady state, release, and
        // reset: the recorded peak must fall back toward current RSS
        // (large frees return to the kernel via munmap). Generous bound —
        // other tests in this process allocate too.
        let before_alloc = peak_rss_bytes();
        let big = vec![1u8; 256 << 20];
        std::hint::black_box(&big[128 << 20]);
        let inflated = peak_rss_bytes();
        assert!(inflated >= before_alloc + (200 << 20));
        drop(big);
        assert!(reset_peak_rss(), "clear_refs unavailable");
        let after = peak_rss_bytes();
        assert!(after > 0);
        assert!(
            after < inflated - (200 << 20),
            "peak did not drop: {inflated} -> {after}"
        );
    }

    #[test]
    fn budget_round_trips_and_checks() {
        set_budget(None);
        assert_eq!(budget(), None);
        assert!(!would_exceed(u64::MAX / 2));
        assert!(check_budget("anything", u64::MAX / 2));

        set_budget(Some(1 << 20));
        assert_eq!(budget(), Some(1 << 20));
        assert!(would_exceed(u64::MAX / 2));
        assert!(!check_budget("huge", u64::MAX / 2));
        assert!(check_budget("tiny", 0));
        set_budget(None);
    }

    #[test]
    fn thread_mark_delta_is_monotone() {
        let mark = thread_mark();
        let (bytes, count) = mark.delta();
        // No tracking allocator in this binary: deltas stay zero.
        let _ = vec![0u8; 4096];
        let (bytes2, count2) = mark.delta();
        assert!(bytes2 >= bytes);
        assert!(count2 >= count);
    }
}
