//! Log-binned histograms for hot repeated measurements.
//!
//! A [`LogHist`] buckets positive values into quarter-octave bins
//! (`floor(log2(v) · 4)`), giving ~19% relative resolution over the whole
//! `f64` range with a handful of `u64` counters — the right shape for
//! per-cycle residual-reduction factors, SpMV latencies, and shard
//! throughputs, where a last-write-wins gauge loses the distribution.
//!
//! Zero, negative, and non-finite observations land in a dedicated
//! `other` bucket so bin arithmetic never sees them; quantile estimation
//! orders that bucket below every positive bin.

use std::collections::BTreeMap;

/// Bins per factor-of-two of value range (quarter-octave resolution).
pub const BINS_PER_OCTAVE: f64 = 4.0;

/// A sparse log₂-binned histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHist {
    count: u64,
    other: u64,
    sum: f64,
    min: f64,
    max: f64,
    bins: BTreeMap<i32, u64>,
}

impl Default for LogHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHist {
            count: 0,
            other: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            bins: BTreeMap::new(),
        }
    }

    /// Bin index for a positive finite value: `floor(log2(v) · 4)`.
    ///
    /// Subnormals map to deeply negative indices (down to ~−4296) and the
    /// largest finite doubles to ~+4095; both fit an `i32` comfortably.
    pub fn bin_of(v: f64) -> i32 {
        debug_assert!(v > 0.0 && v.is_finite());
        (v.log2() * BINS_PER_OCTAVE).floor() as i32
    }

    /// Geometric midpoint of bin `k` — the representative value reported
    /// for observations that landed in it.
    pub fn bin_value(k: i32) -> f64 {
        ((k as f64 + 0.5) / BINS_PER_OCTAVE).exp2()
    }

    /// Records one observation.
    ///
    /// Positive finite values are binned; zero, negative, and non-finite
    /// values count toward [`LogHist::other`] (and the total) but stay out
    /// of the bins. Finite values also update the exact sum/min/max.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        if v > 0.0 && v.is_finite() {
            *self.bins.entry(Self::bin_of(v)).or_insert(0) += 1;
        } else {
            self.other += 1;
        }
    }

    /// Total observations, including the `other` bucket.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations that were zero, negative, or non-finite.
    pub fn other(&self) -> u64 {
        self.other
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.min.is_finite() {
            self.min
        } else {
            0.0
        }
    }

    /// Largest finite observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.max.is_finite() {
            self.max
        } else {
            0.0
        }
    }

    /// Mean of finite observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// The `other` bucket sorts below every positive bin and reports the
    /// exact minimum; positive bins report their geometric midpoint,
    /// clamped into the observed `[min, max]` so the estimate never
    /// strays outside the data.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        if target >= self.count {
            // p100 is exact: the tracked maximum, not a bin midpoint.
            return self.max();
        }
        let mut cum = self.other;
        if cum >= target {
            return self.min().min(0.0);
        }
        for (&k, &c) in &self.bins {
            cum += c;
            if cum >= target {
                return Self::bin_value(k).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Iterates `(bin index, count)` in ascending bin order.
    pub fn bins(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.bins.iter().map(|(&k, &c)| (k, c))
    }

    /// Reconstructs a histogram from serialized parts (artifact loading).
    pub fn from_parts(
        count: u64,
        other: u64,
        sum: f64,
        min: f64,
        max: f64,
        bins: BTreeMap<i32, u64>,
    ) -> Self {
        LogHist {
            count,
            other,
            sum,
            min: if count > 0 { min } else { f64::INFINITY },
            max: if count > 0 { max } else { f64::NEG_INFINITY },
            bins,
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, rhs: &LogHist) {
        self.count += rhs.count;
        self.other += rhs.other;
        self.sum += rhs.sum;
        self.min = self.min.min(rhs.min);
        self.max = self.max.max(rhs.max);
        for (k, c) in rhs.bins() {
            *self.bins.entry(k).or_insert(0) += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_quarter_octaves() {
        assert_eq!(LogHist::bin_of(1.0), 0);
        assert_eq!(LogHist::bin_of(2.0), 4);
        assert_eq!(LogHist::bin_of(0.5), -4);
        // Representative value sits inside its own bin.
        for v in [1.0, 3.7, 1e-9, 2.5e11] {
            let k = LogHist::bin_of(v);
            assert_eq!(LogHist::bin_of(LogHist::bin_value(k)), k, "v={v}");
        }
    }

    #[test]
    fn edge_values_are_safe() {
        let mut h = LogHist::new();
        h.observe(0.0); // zero -> other
        h.observe(-3.0); // negative -> other
        h.observe(f64::NAN); // non-finite -> other
        h.observe(f64::INFINITY); // non-finite -> other
        h.observe(5e-324); // smallest subnormal
        h.observe(f64::MAX); // largest finite
        assert_eq!(h.count(), 6);
        assert_eq!(h.other(), 4);
        assert_eq!(h.bins().count(), 2);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), f64::MAX);
        // Quantiles stay within the observed range.
        assert!(h.quantile(1.0) <= f64::MAX);
        assert!(h.quantile(0.0) <= 0.0);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = LogHist::new();
        for i in 1..=1000u64 {
            h.observe(i as f64);
        }
        let p50 = h.quantile(0.5);
        let p95 = h.quantile(0.95);
        // Quarter-octave bins are ~19% wide; allow a generous band.
        assert!((300.0..=800.0).contains(&p50), "p50={p50}");
        assert!((700.0..=1000.0).contains(&p95), "p95={p95}");
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.quantile(1.0), 1000.0);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut all = LogHist::new();
        for i in 0..100 {
            let v = (i as f64 * 0.37).exp();
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
