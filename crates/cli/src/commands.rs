//! Subcommand implementations for the `stochcdr` CLI.

use std::fmt::Write as _;

use stochcdr::acquisition::{lock_probability_curve, mean_lock_time, worst_case_start};
use stochcdr::ber::{bathtub, eye_opening_at_ber};
use stochcdr::clock_jitter::analyze_clock_jitter;
use stochcdr::cycle_slip::{mean_time_between_slips, mean_time_to_first_slip};
use stochcdr::{report, CdrAnalysis, CdrChain, CdrModel};
use stochcdr_linalg::pattern;
use stochcdr_obs as obs;
use stochcdr_sweep::{render as sweep_render, run as sweep_run, SweepAxis, SweepSpec};

use crate::args::{usage, CliError, Options, ParsedArgs};

/// Runs the subcommand and renders its output.
///
/// # Errors
///
/// Returns [`CliError`] for malformed subcommand flags or analysis
/// failures.
pub fn dispatch(parsed: &ParsedArgs) -> Result<String, CliError> {
    match parsed.command.as_str() {
        "help" => Ok(usage()),
        "analyze" => analyze(&parsed.options),
        "sweep" => sweep(&parsed.options),
        "bathtub" => bathtub_cmd(&parsed.options),
        "slip" => slip(&parsed.options),
        "acquire" => acquire(&parsed.options),
        "jitter" => jitter(&parsed.options),
        "spy" => spy(&parsed.options),
        "scale" => scale(&parsed.options),
        "report" => report_cmd(&parsed.options),
        "diff" => diff_cmd(&parsed.options),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b < 1 << 10 {
        format!("{b}B")
    } else if b < 1 << 20 {
        format!("{:.1}KiB", b as f64 / (1u64 << 10) as f64)
    } else if b < 1 << 30 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    }
}

/// Histogram cells whose names mark nanoseconds (a `_ns` / `.ns`
/// component, e.g. `multigrid.smooth.ns.level0`) render with time units.
fn fmt_hist_cell(name: &str, v: f64) -> String {
    if name.ends_with("_ns") || name.ends_with(".ns") || name.contains(".ns.") {
        fmt_ns(v)
    } else {
        format!("{v:.3e}")
    }
}

/// `stochcdr diff --baseline A --fresh B`: compares two metrics
/// artifacts with [`obs::artifact::diff`] — counters, events, span
/// counts, and value-histogram bins exactly; timings, memory, and gauges
/// within `--rel-tol` (advisory). A deterministic mismatch is an error
/// carrying the full regression report; `--out FILE` saves the report
/// either way.
fn diff_cmd(opts: &Options) -> Result<String, CliError> {
    let load = |flag: &str| -> Result<obs::artifact::Artifact, CliError> {
        let path = opts
            .extra
            .get(flag)
            .ok_or_else(|| CliError::MissingValue(format!("--{flag}")))?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Analysis(format!("cannot read artifact '{path}': {e}")))?;
        obs::artifact::Artifact::load_jsonl(&text)
            .map_err(|e| CliError::Analysis(format!("invalid metrics artifact '{path}': {e}")))
    };
    let baseline = load("baseline")?;
    let fresh = load("fresh")?;
    let rel_tol = extra_f64(
        opts,
        "rel-tol",
        obs::artifact::DiffOptions::default().rel_tol,
    )?;
    if !(rel_tol.is_finite() && rel_tol > 0.0) {
        return Err(CliError::BadValue {
            flag: "--rel-tol".into(),
            value: rel_tol.to_string(),
            expected: "a positive number",
        });
    }
    let report = obs::artifact::diff(&baseline, &fresh, &obs::artifact::DiffOptions { rel_tol });
    if let Some(path) = opts.extra.get("out") {
        std::fs::write(path, &report.text)
            .map_err(|e| CliError::Analysis(format!("cannot write diff report '{path}': {e}")))?;
    }
    if report.ok() {
        Ok(report.text)
    } else {
        Err(CliError::Analysis(format!(
            "{} deterministic record(s) drifted\n{}",
            report.failures.len(),
            report.text
        )))
    }
}

/// `stochcdr report --in FILE`: renders a recorded artifact — either a
/// `--metrics ... --metrics-format jsonl` stream or a `--trace` Chrome
/// trace — as a human-readable table, validating its structure. Memory
/// attribution (schema `stochcdr-obs/3`) and profile stacks (`/4`)
/// render only when present, so older artifacts print exactly as they
/// used to. `--check-folded PATH` additionally validates a folded
/// profile file against the artifact: every frame of every stack must
/// resolve to a span name recorded in the artifact's span paths (the
/// CI profile smoke test's gate).
fn report_cmd(opts: &Options) -> Result<String, CliError> {
    let path = opts
        .extra
        .get("in")
        .ok_or_else(|| CliError::MissingValue("--in".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Analysis(format!("cannot read artifact '{path}': {e}")))?;
    let mut out = String::new();
    if obs::artifact::looks_like_trace(&text) {
        let check = obs::artifact::check_trace(&text)
            .map_err(|e| CliError::Analysis(format!("invalid trace '{path}': {e}")))?;
        let _ = writeln!(
            out,
            "chrome trace: {} events ({} begin / {} end) on {} thread lanes",
            check.events, check.begins, check.ends, check.threads
        );
        if !check.span_counts.is_empty() {
            let _ = writeln!(out, "\nspans (name, count):");
            for (name, count) in &check.span_counts {
                let _ = writeln!(out, "  {name:<40} {count}");
            }
        }
        if !check.unbalanced.is_empty() {
            return Err(CliError::Analysis(format!(
                "trace '{path}' has unbalanced begin/end events for: {}",
                check.unbalanced.join(", ")
            )));
        }
        let _ = writeln!(out, "\nbegin/end events balanced for every span name");
        if opts.extra.contains_key("check-folded") {
            // Chrome traces carry no span-path registry to check against;
            // make the dead flag loud instead of silently skipping it.
            return Err(CliError::Analysis(
                "--check-folded requires a metrics artifact, not a Chrome trace".into(),
            ));
        }
    } else {
        let art = obs::artifact::Artifact::load_jsonl(&text)
            .map_err(|e| CliError::Analysis(format!("invalid metrics artifact '{path}': {e}")))?;
        let _ = writeln!(out, "metrics artifact ({})", art.schema);
        if !art.spans.is_empty() {
            let _ = writeln!(out, "\nspans (path, count, total, mean):");
            for (p, s) in &art.spans {
                let mean = s.total_ns as f64 / s.count.max(1) as f64;
                let _ = writeln!(
                    out,
                    "  {:<40} {:>8}  {:>10}  {:>10}",
                    p,
                    s.count,
                    fmt_ns(s.total_ns as f64),
                    fmt_ns(mean)
                );
            }
        }
        // Memory attribution arrived with stochcdr-obs/3; older artifacts
        // carry all-zero fields and skip the section entirely.
        if art.spans.values().any(|s| s.allocs > 0) {
            let _ = writeln!(out, "\nspan memory (path, bytes, allocs):");
            for (p, s) in &art.spans {
                if s.allocs > 0 {
                    let _ = writeln!(
                        out,
                        "  {:<40} {:>12}  {:>8}",
                        p,
                        fmt_bytes(s.alloc_bytes),
                        s.allocs
                    );
                }
            }
        }
        if !art.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, total) in &art.counters {
                let _ = writeln!(out, "  {name:<40} {total}");
            }
        }
        if !art.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges (last):");
            for (name, v) in &art.gauges {
                let _ = writeln!(out, "  {name:<40} {v:.6e}");
            }
        }
        if !art.hists.is_empty() {
            let _ = writeln!(out, "\nhistograms (name, count, p50, p95, max):");
            for (name, h) in &art.hists {
                let _ = writeln!(
                    out,
                    "  {:<40} {:>8}  {:>10}  {:>10}  {}",
                    name,
                    h.count(),
                    fmt_hist_cell(name, h.quantile(0.5)),
                    fmt_hist_cell(name, h.quantile(0.95)),
                    fmt_hist_cell(name, h.max()),
                );
            }
        }
        if !art.events.is_empty() {
            let _ = writeln!(out, "\nevents (count):");
            for (name, count) in &art.events {
                let _ = writeln!(out, "  {name:<40} {count}");
            }
        }
        // Profile stacks arrived with stochcdr-obs/4; older artifacts
        // carry an empty map and skip the section.
        if !art.profile.is_empty() {
            let total: u64 = art.profile.values().sum();
            let _ = writeln!(out, "\nprofile ({total} samples; folded stack, samples):");
            for (stack, count) in &art.profile {
                let _ = writeln!(out, "  {stack:<40} {count}");
            }
        }
        if let Some(folded_path) = opts.extra.get("check-folded") {
            let _ = writeln!(out, "\n{}", check_folded(&art, folded_path)?);
        }
    }
    Ok(out)
}

/// Validates a folded-stack profile file against an artifact: every
/// frame of every `stack count` line must be a span name occurring in
/// one of the artifact's recorded span paths, and the file must carry
/// at least one sample. Returns a one-line summary for the report.
fn check_folded(art: &obs::artifact::Artifact, path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Analysis(format!("cannot read folded profile '{path}': {e}")))?;
    let known: std::collections::BTreeSet<&str> =
        art.spans.keys().flat_map(|p| p.split('/')).collect();
    let mut stacks = 0u64;
    let mut samples = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let bad = |what: String| {
            CliError::Analysis(format!("folded profile '{path}' line {}: {what}", idx + 1))
        };
        let (stack, count) = line
            .rsplit_once(' ')
            .ok_or_else(|| bad("expected 'stack count'".into()))?;
        let count: u64 = count
            .parse()
            .map_err(|_| bad(format!("bad sample count '{count}'")))?;
        for frame in stack.split(';') {
            if !known.contains(frame) {
                return Err(bad(format!(
                    "frame '{frame}' does not match any recorded span"
                )));
            }
        }
        stacks += 1;
        samples += count;
    }
    if stacks == 0 {
        return Err(CliError::Analysis(format!(
            "folded profile '{path}' carries no samples"
        )));
    }
    Ok(format!(
        "folded profile ok: {stacks} stack(s), {samples} sample(s), \
         every frame resolves to a recorded span"
    ))
}

fn build_and_solve(opts: &Options) -> Result<(CdrChain, CdrAnalysis), CliError> {
    let chain = CdrModel::new(opts.config.clone()).build_chain()?;
    let analysis =
        chain.analyze_tuned(opts.solver, opts.tol, opts.cycle, opts.accel, opts.restart)?;
    Ok((chain, analysis))
}

fn extra_usize(opts: &Options, name: &str, default: usize) -> Result<usize, CliError> {
    match opts.extra.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            flag: format!("--{name}"),
            value: v.clone(),
            expected: "a non-negative integer",
        }),
    }
}

fn extra_f64(opts: &Options, name: &str, default: f64) -> Result<f64, CliError> {
    match opts.extra.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            flag: format!("--{name}"),
            value: v.clone(),
            expected: "a number",
        }),
    }
}

fn analyze(opts: &Options) -> Result<String, CliError> {
    let (chain, a) = build_and_solve(opts)?;
    let mut out = String::new();
    let _ = writeln!(out, "{}", report::figure_panel(&chain, &a));
    let mtbs = mean_time_between_slips(&chain, &a.stationary)?;
    let _ = writeln!(out, "mean time between cycle slips: {mtbs:.3e} symbols");
    if chain.pruned_states() > 0 {
        let _ = writeln!(
            out,
            "(note: {} unreachable Cartesian-product states pruned)",
            chain.pruned_states()
        );
    }
    Ok(out)
}

/// Parses one comma-separated value list into a typed sweep axis.
fn parse_axis(flag: &str, name: &str, values: &str) -> Result<SweepAxis, CliError> {
    let toks: Vec<&str> = values
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let bad = |value: &str, expected: &'static str| CliError::BadValue {
        flag: flag.to_string(),
        value: value.to_string(),
        expected,
    };
    let usizes = |expected| -> Result<Vec<usize>, CliError> {
        toks.iter()
            .map(|v| v.parse().map_err(|_| bad(v, expected)))
            .collect()
    };
    let f64s = |expected| -> Result<Vec<f64>, CliError> {
        toks.iter()
            .map(|v| v.parse().map_err(|_| bad(v, expected)))
            .collect()
    };
    match name {
        "counter" => Ok(SweepAxis::CounterLen(usizes("integers")?)),
        "dead-zone" => Ok(SweepAxis::DeadZone(usizes("integers")?)),
        "refinement" => Ok(SweepAxis::Refinement(usizes("integers")?)),
        "sigma-nw" => Ok(SweepAxis::SigmaNw(f64s("numbers")?)),
        "drift-ppm" => Ok(SweepAxis::DriftPpm(f64s("numbers")?)),
        "filter" => toks
            .iter()
            .map(|v| match *v {
                "counter" | "overflow" => Ok(stochcdr::FilterKind::OverflowCounter),
                "consecutive" => Ok(stochcdr::FilterKind::ConsecutiveDetector),
                other => Err(bad(other, "counter | consecutive")),
            })
            .collect::<Result<_, _>>()
            .map(SweepAxis::Filter),
        "solver" => toks
            .iter()
            .map(|v| {
                stochcdr::SolverChoice::parse(v)
                    .ok_or_else(|| bad(v, "power|gs|jacobi|direct|mg|mgw|mgk|gmres"))
            })
            .collect::<Result<_, _>>()
            .map(SweepAxis::Solver),
        other => Err(CliError::BadValue {
            flag: "--knob".into(),
            value: other.into(),
            expected: "counter | dead-zone | sigma-nw | drift-ppm | refinement | filter | solver",
        }),
    }
}

fn sweep(opts: &Options) -> Result<String, CliError> {
    // Axes come from `--axes "name=v1,v2;name2=..."`, from the original
    // `--knob NAME --values a,b,c` pair, or default to a counter sweep.
    let mut axes: Vec<SweepAxis> = Vec::new();
    if let Some(text) = opts.extra.get("axes") {
        for part in text.split(';').filter(|p| !p.trim().is_empty()) {
            let (name, values) = part.split_once('=').ok_or_else(|| CliError::BadValue {
                flag: "--axes".into(),
                value: part.into(),
                expected: "name=v1,v2[;name=...]",
            })?;
            axes.push(parse_axis("--axes", name.trim(), values)?);
        }
    }
    if axes.is_empty() || opts.extra.contains_key("knob") {
        let knob = opts
            .extra
            .get("knob")
            .cloned()
            .unwrap_or_else(|| "counter".into());
        let values = opts
            .extra
            .get("values")
            .cloned()
            .unwrap_or_else(|| "4,8,16".into());
        axes.push(parse_axis("--values", &knob, &values)?);
    }
    let warm = match opts.extra.get("warm-start").map(String::as_str) {
        None | Some("on") | Some("true") => true,
        Some("off") | Some("false") => false,
        Some(v) => {
            return Err(CliError::BadValue {
                flag: "--warm-start".into(),
                value: v.into(),
                expected: "on | off",
            })
        }
    };

    let mut spec = SweepSpec::new(opts.config.clone())
        .solver(opts.solver)
        .tol(opts.tol)
        .warm_start(warm);
    for axis in axes {
        spec = spec.axis(axis);
    }
    let sweep = sweep_run(&spec)?;

    if let Some(path) = opts.extra.get("out") {
        std::fs::write(path, sweep_render(&spec, &sweep.points))
            .map_err(|e| CliError::Analysis(format!("cannot write sweep output '{path}': {e}")))?;
    }

    // The point label column: axis names for the header, value labels per
    // row (comma-joined when sweeping several axes at once).
    let header = spec
        .axes
        .iter()
        .map(SweepAxis::name)
        .collect::<Vec<_>>()
        .join(",");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>14} {:>8}",
        header, "BER", "MTBS (sym)", "iters"
    );
    for p in &sweep.points {
        let label = p
            .params
            .iter()
            .map(|(_, l)| l.as_str())
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(
            out,
            "{:<12} {:>12.3e} {:>14.3e} {:>8}",
            label, p.ber, p.mtbs, p.iterations
        );
    }
    // Cache effectiveness goes to the observability layer (visible with
    // --metrics), keeping stdout shape stable.
    obs::gauge("sweep.cache_hit_rate", sweep.cache.hit_rate());
    Ok(out)
}

fn bathtub_cmd(opts: &Options) -> Result<String, CliError> {
    let points = extra_usize(opts, "points", 21)?.max(2);
    let target = extra_f64(opts, "target", 1e-12)?;
    let (_, a) = build_and_solve(opts)?;
    let sigma = opts.config.white.sigma_ui;
    let mut out = String::new();
    let _ = writeln!(out, "{:>10} {:>12}", "offset UI", "BER");
    for p in bathtub(&a.phi_density, sigma, points) {
        let _ = writeln!(out, "{:>10.3} {:>12.3e}", p.offset_ui, p.ber);
    }
    let _ = writeln!(
        out,
        "horizontal eye opening at BER {target:.0e}: {:.3} UI",
        eye_opening_at_ber(&a.phi_density, sigma, target)
    );
    Ok(out)
}

fn slip(opts: &Options) -> Result<String, CliError> {
    let (chain, a) = build_and_solve(opts)?;
    let mtbs = mean_time_between_slips(&chain, &a.stationary)?;
    let mut out = String::new();
    let _ = writeln!(out, "BER                         : {:.3e}", a.ber);
    let _ = writeln!(out, "mean time between slips     : {mtbs:.3e} symbols");
    match mean_time_to_first_slip(&chain, 1) {
        Ok(first) => {
            let _ = writeln!(out, "first slip from lock        : {first:.3e} symbols");
        }
        Err(e) => {
            let _ = writeln!(out, "first slip from lock        : unavailable ({e})");
        }
    }
    Ok(out)
}

fn acquire(opts: &Options) -> Result<String, CliError> {
    let horizon = extra_usize(opts, "horizon", 1000)?;
    let chain = CdrModel::new(opts.config.clone()).build_chain()?;
    let radius = opts.config.step_bins();
    let mean = mean_lock_time(&chain, radius)?;
    let curve = lock_probability_curve(&chain, worst_case_start(&chain), radius, horizon)?;
    let mut out = String::new();
    let _ = writeln!(out, "mean lock time from half-UI start: {mean:.1} symbols");
    let _ = writeln!(out, "{:>8} {:>12}", "symbols", "P(locked)");
    let step = (horizon / 10).max(1);
    for k in (0..=horizon).step_by(step) {
        let _ = writeln!(out, "{:>8} {:>12.4}", k, curve[k]);
    }
    Ok(out)
}

fn jitter(opts: &Options) -> Result<String, CliError> {
    let max_lag = extra_usize(opts, "max-lag", 200)?.max(1);
    let (chain, a) = build_and_solve(opts)?;
    let r = analyze_clock_jitter(&chain, &a.stationary, max_lag, 16)?;
    let mut out = String::new();
    let _ = writeln!(out, "rms phase jitter   : {:.4e} UI", r.rms_ui);
    let _ = writeln!(out, "lag-1 correlation  : {:.4}", r.lag1_correlation());
    let _ = writeln!(
        out,
        "correlation length : {} symbols",
        r.correlation_length()
    );
    let _ = writeln!(out, "{:>8} {:>14}", "lag", "J(lag) UI");
    for &k in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        if k <= max_lag {
            let _ = writeln!(out, "{:>8} {:>14.4e}", k, r.accumulated_ui[k]);
        }
    }
    Ok(out)
}

fn spy(opts: &Options) -> Result<String, CliError> {
    let size = extra_usize(opts, "size", 64)?.max(1);
    let chain = CdrModel::new(opts.config.clone()).build_chain()?;
    let tpm = chain.tpm().matrix();
    let stats = pattern::stats(tpm);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} states, {} nonzeros (density {:.3e}, rows {}..{} nnz)",
        stats.rows, stats.nnz, stats.density, stats.min_row_nnz, stats.max_row_nnz
    );
    let _ = writeln!(out, "{}", pattern::spy_ascii(tpm, size));
    Ok(out)
}

/// `stochcdr scale --lanes N`: replicates the configured chain into an
/// `N`-lane Kronecker product and solves for the joint stationary
/// distribution, selecting the implicit (matrix-free) backend whenever
/// materializing the joint TPM would cross `--mem-budget` (`--path`
/// forces either backend). This is the paper-scale entry point: the
/// joint state space multiplies with every lane while the stored
/// representation only adds one factor CSR.
fn scale(opts: &Options) -> Result<String, CliError> {
    use stochcdr::{ProductChain, StationarySolver as _};

    let lanes = extra_usize(opts, "lanes", 2)?.max(1);
    let chain = CdrModel::new(opts.config.clone()).build_chain()?;
    let product: ProductChain = chain.replicate(lanes)?;

    // `--restart N` without `--accel` resizes the default always-on
    // Krylov window (the `solve` path threads restart through
    // `analyze_tuned` instead, where it also serves the gmres solver).
    let accel = match (opts.accel, opts.restart) {
        (None, Some(r)) => {
            use stochcdr::{KrylovAccel, MAX_KRYLOV_WINDOW};
            if !(2..=MAX_KRYLOV_WINDOW).contains(&r) {
                return Err(CliError::BadValue {
                    flag: "--restart".into(),
                    value: r.to_string(),
                    expected: "a Krylov window length in 2..=16 for scale",
                });
            }
            Some(Some(KrylovAccel::always(r)))
        }
        (a, _) => a,
    };

    let start = std::time::Instant::now();
    let solver = product.solver_tuned(opts.tol, opts.cycle, accel);
    let solver_name = solver.name();
    let solve = match opts.extra.get("path").map(String::as_str) {
        None | Some("auto") => product.solve_auto_with(solver)?,
        Some("implicit") => product.solve_implicit_with(solver)?,
        Some("materialized") => product.solve_materialized_with(solver)?,
        Some(v) => {
            return Err(CliError::BadValue {
                flag: "--path".into(),
                value: v.into(),
                expected: "auto | implicit | materialized",
            })
        }
    };
    let solve_secs = start.elapsed().as_secs_f64();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "lanes               : {lanes} x {} states",
        chain.state_count()
    );
    let _ = writeln!(out, "joint states        : {}", product.state_count());
    let _ = writeln!(
        out,
        "stored transitions  : {} (factored; materialized would be {:.3e} = {})",
        product.compact_nnz(),
        product.materialized_nnz() as f64,
        fmt_bytes(product.materialize_cost_bytes()),
    );
    let budget = match obs::mem::budget() {
        Some(b) => format!("budget {}", fmt_bytes(b)),
        None => "no budget".to_string(),
    };
    let _ = writeln!(
        out,
        "path                : {} ({budget})",
        if solve.implicit {
            "implicit"
        } else {
            "materialized"
        }
    );
    let _ = writeln!(out, "solver              : {solver_name}");
    let _ = writeln!(out, "cycles              : {}", solve.result.iterations());
    let _ = writeln!(
        out,
        "cycle equivalents   : {:.2} (final {})",
        solve.stats.cycle_equivalents,
        solve.stats.final_cycle.cli_name()
    );
    if solve.stats.krylov_windows > 0 {
        let _ = writeln!(
            out,
            "krylov windows      : {} ({} accepted)",
            solve.stats.krylov_windows, solve.stats.krylov_accepts
        );
    }
    let _ = writeln!(out, "residual            : {:.3e}", solve.result.residual());
    // FNV-1a over the stationary vector's f64 bit patterns: two runs
    // print the same checksum iff they produced the same distribution
    // bits, which is how the determinism contract is checked across
    // `--threads` settings at scales where diffing vectors is unwieldy.
    let checksum = solve
        .result
        .distribution
        .iter()
        .fold(0xcbf2_9ce4_8422_2325_u64, |h, v| {
            (h ^ v.to_bits()).wrapping_mul(0x100_0000_01b3)
        });
    let _ = writeln!(out, "distribution fnv1a  : {checksum:016x}");
    let _ = writeln!(out, "solve time          : {solve_secs:.2}s");
    let _ = writeln!(
        out,
        "peak RSS            : {}",
        fmt_bytes(obs::mem::peak_rss_bytes())
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    /// A small, fast model for CLI smoke tests.
    const SMALL: &str = "--phases 4 --refinement 2 --counter 4 --sigma-nw 0.08 \
                         --drift-mean 2e-2 --drift-dev 8e-2";

    #[test]
    fn analyze_smoke() {
        let out = run(&argv(&format!("analyze {SMALL}"))).unwrap();
        assert!(out.contains("COUNTER: 4"));
        assert!(out.contains("BER:"));
        assert!(out.contains("cycle slips"));
    }

    #[test]
    fn sweep_smoke() {
        let out = run(&argv(&format!("sweep {SMALL} --knob counter --values 2,4"))).unwrap();
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("MTBS"));
    }

    #[test]
    fn sweep_axes_grid_and_json_out() {
        let path = std::env::temp_dir().join("stochcdr_sweep_out_test.json");
        let out = run(&argv(&format!(
            "sweep {SMALL} --axes drift-ppm=20000,21000;counter=2,4 --out {}",
            path.display()
        )))
        .unwrap();
        // Header plus the 2×2 grid.
        assert_eq!(out.lines().count(), 5);
        assert!(out.starts_with("drift-ppm,counter"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("stochcdr-sweep/1"));
        assert!(run(&argv(&format!("sweep {SMALL} --axes nonsense"))).is_err());
        assert!(run(&argv(&format!("sweep {SMALL} --warm-start maybe"))).is_err());
    }

    #[test]
    fn bathtub_smoke() {
        let out = run(&argv(&format!("bathtub {SMALL} --points 5"))).unwrap();
        assert!(out.contains("offset UI"));
        assert!(out.contains("eye opening"));
        assert_eq!(out.lines().count(), 7);
    }

    #[test]
    fn slip_and_acquire_and_jitter_smoke() {
        assert!(run(&argv(&format!("slip {SMALL}")))
            .unwrap()
            .contains("between slips"));
        let out = run(&argv(&format!("acquire {SMALL} --horizon 100"))).unwrap();
        assert!(out.contains("mean lock time"));
        let out = run(&argv(&format!("jitter {SMALL} --max-lag 32"))).unwrap();
        assert!(out.contains("rms phase jitter"));
    }

    #[test]
    fn spy_smoke() {
        let out = run(&argv(&format!("spy {SMALL} --size 16"))).unwrap();
        assert!(out.contains('+'));
        assert!(out.contains("nonzeros"));
    }

    #[test]
    fn scale_smoke_auto_and_forced_paths() {
        // Tiny lanes (--counter 2 shrinks SMALL further) keep the double
        // solve fast; with no budget the auto path materializes.
        let tiny = format!("{SMALL} --counter 2 --lanes 2 --tol 1e-8");
        let out = run(&argv(&format!("scale {tiny}"))).unwrap();
        assert!(out.contains("joint states"), "{out}");
        assert!(out.contains("materialized (no budget)"), "{out}");
        assert!(out.contains("peak RSS"), "{out}");
        // A 1-byte budget flips auto to the implicit backend.
        let out = run(&argv(&format!("scale {tiny} --mem-budget 1"))).unwrap();
        assert!(out.contains("implicit (budget"), "{out}");
        // Forcing the materialized path under that budget is refused.
        assert!(run(&argv(&format!(
            "scale {tiny} --mem-budget 1 --path materialized"
        )))
        .is_err());
        // And the flag grammar is validated.
        assert!(run(&argv(&format!("scale {SMALL} --path sideways"))).is_err());
        assert!(crate::args::usage().contains("scale"));
    }

    #[test]
    fn report_renders_memory_only_when_artifact_has_it() {
        let dir = std::env::temp_dir();
        // A /3 artifact with span memory attribution...
        let v3 = dir.join("stochcdr_cli_report_v3.jsonl");
        std::fs::write(
            &v3,
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/3\"}\n\
             {\"kind\":\"span\",\"path\":\"solve\",\"name\":\"solve\",\"nanos\":1200,\
              \"alloc_bytes\":65536,\"allocs\":3}\n",
        )
        .unwrap();
        let out = run(&argv(&format!("report --in {}", v3.display()))).unwrap();
        assert!(out.contains("stochcdr-obs/3"), "{out}");
        assert!(out.contains("span memory"), "{out}");
        assert!(out.contains("64.0KiB"), "{out}");

        // ...and a pre-/3 artifact renders exactly as before: no memory
        // section, no error.
        let v2 = dir.join("stochcdr_cli_report_v2.jsonl");
        std::fs::write(
            &v2,
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/2\"}\n\
             {\"kind\":\"span\",\"path\":\"solve\",\"name\":\"solve\",\"nanos\":1200}\n\
             {\"kind\":\"counter\",\"name\":\"sweeps\",\"delta\":3}\n",
        )
        .unwrap();
        let out = run(&argv(&format!("report --in {}", v2.display()))).unwrap();
        assert!(out.contains("stochcdr-obs/2"), "{out}");
        assert!(!out.contains("span memory"), "{out}");
        assert!(out.contains("sweeps"), "{out}");

        std::fs::remove_file(&v3).ok();
        std::fs::remove_file(&v2).ok();
    }

    #[test]
    fn report_renders_profile_and_checks_folded() {
        let dir = std::env::temp_dir();
        // A /4 artifact with profile stacks renders the profile section.
        let v4 = dir.join("stochcdr_cli_report_v4.jsonl");
        std::fs::write(
            &v4,
            "{\"kind\":\"meta\",\"schema\":\"stochcdr-obs/4\"}\n\
             {\"kind\":\"span\",\"path\":\"solve/cycle\",\"name\":\"cycle\",\"nanos\":800}\n\
             {\"kind\":\"span\",\"path\":\"solve\",\"name\":\"solve\",\"nanos\":1200}\n\
             {\"kind\":\"profile\",\"stack\":\"solve;cycle\",\"count\":5}\n",
        )
        .unwrap();
        let out = run(&argv(&format!("report --in {}", v4.display()))).unwrap();
        assert!(out.contains("profile (5 samples"), "{out}");
        assert!(out.contains("solve;cycle"), "{out}");

        // A folded file whose frames all resolve to span names passes.
        let good = dir.join("stochcdr_cli_good.folded");
        std::fs::write(&good, "solve;cycle 5\nsolve 2\n").unwrap();
        let out = run(&argv(&format!(
            "report --in {} --check-folded {}",
            v4.display(),
            good.display()
        )))
        .unwrap();
        assert!(
            out.contains("folded profile ok: 2 stack(s), 7 sample(s)"),
            "{out}"
        );

        // Unknown frames, malformed lines, and empty files all fail.
        let bad = dir.join("stochcdr_cli_bad.folded");
        let check = |content: &str| {
            std::fs::write(&bad, content).unwrap();
            run(&argv(&format!(
                "report --in {} --check-folded {}",
                v4.display(),
                bad.display()
            )))
            .unwrap_err()
            .to_string()
        };
        assert!(check("solve;warp 1\n").contains("warp"));
        assert!(check("just-a-stack-no-count\n").contains("stack count"));
        assert!(check("").contains("no samples"));

        std::fs::remove_file(&v4).ok();
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn profile_folded_writes_loadable_stacks() {
        let dir = std::env::temp_dir();
        let folded = dir.join("stochcdr_cli_profile.folded");
        let metrics = dir.join("stochcdr_cli_profile.jsonl");
        let out = run(&argv(&format!(
            "analyze {SMALL} --profile-folded {} --profile-interval 0.05 \
             --metrics {} --metrics-format jsonl",
            folded.display(),
            metrics.display()
        )))
        .unwrap();
        assert!(out.contains("BER:"), "{out}");
        // The folded file exists and every line is `stack count` (the
        // tiny model may finish between samples, so emptiness is legal).
        let text = std::fs::read_to_string(&folded).unwrap();
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack count");
            assert!(!stack.is_empty());
            count.parse::<u64>().expect("sample count");
        }
        // The artifact parses under the current schema.
        let art = stochcdr_obs::artifact::Artifact::load_jsonl(
            &std::fs::read_to_string(&metrics).unwrap(),
        )
        .unwrap();
        assert_eq!(art.schema, stochcdr_obs::SCHEMA_VERSION);
        std::fs::remove_file(&folded).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn progress_flag_is_accepted_sink_less() {
        // `--progress` alone must work without any sink: status goes to
        // stderr, events fall on the disabled facade.
        let out = run(&argv(&format!("analyze {SMALL} --progress 0.5"))).unwrap();
        assert!(out.contains("BER:"), "{out}");
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&argv("help")).unwrap().contains("usage"));
        assert!(run(&argv("nope")).is_err());
        assert!(run(&argv("sweep --knob nope --values 1")).is_err());
        // Swept values are re-validated through the config builder.
        assert!(run(&argv(&format!("sweep {SMALL} --knob counter --values 0"))).is_err());
    }
}
