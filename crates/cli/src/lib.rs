//! Library backing the `stochcdr` command-line tool.
//!
//! The CLI wraps the workspace's analyses behind flag-driven subcommands so
//! a designer can evaluate a CDR configuration without writing Rust:
//!
//! ```text
//! stochcdr analyze  --sigma-nw 0.05 --drift-mean 2e-3 --counter 8
//! stochcdr sweep    --knob counter --values 4,8,16
//! stochcdr bathtub  --points 21
//! stochcdr slip
//! stochcdr acquire  --horizon 1000
//! stochcdr jitter   --max-lag 200
//! stochcdr spy      --size 64
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy keeps
//! external crates to `rand`/`proptest`/`criterion`); the grammar is plain
//! `--flag value` pairs after a subcommand.

pub mod args;
pub mod commands;

pub use args::{CliError, Options, ParsedArgs};

/// Entry point shared by `main` and the tests: parses, dispatches, and
/// returns the text that should be printed.
///
/// # Errors
///
/// Returns [`CliError`] for unknown subcommands/flags, malformed values,
/// or analysis failures (each rendered with a usage hint).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = args::parse(argv)?;
    commands::dispatch(&parsed)
}
