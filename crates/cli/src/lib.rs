//! Library backing the `stochcdr` command-line tool.
//!
//! The CLI wraps the workspace's analyses behind flag-driven subcommands so
//! a designer can evaluate a CDR configuration without writing Rust:
//!
//! ```text
//! stochcdr analyze  --sigma-nw 0.05 --drift-mean 2e-3 --counter 8
//! stochcdr sweep    --knob counter --values 4,8,16
//! stochcdr bathtub  --points 21
//! stochcdr slip
//! stochcdr acquire  --horizon 1000
//! stochcdr jitter   --max-lag 200
//! stochcdr spy      --size 64
//! stochcdr report   --in metrics.jsonl
//! stochcdr diff     --baseline a.jsonl --fresh b.jsonl
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy keeps
//! external crates to `rand`/`proptest`/`criterion`); the grammar is plain
//! `--flag value` pairs after a subcommand.

pub mod args;
pub mod commands;

pub use args::{CliError, MetricsFormat, Options, ParsedArgs};

use stochcdr_obs as obs;

/// Entry point shared by `main` and the tests: parses, dispatches, and
/// returns the text that should be printed.
///
/// With `--metrics PATH` the instrumentation layer is enabled for the
/// duration of the command: `--metrics-format jsonl` streams records to
/// `PATH` as they happen; the default `summary` format aggregates them
/// and writes a rendered table to `PATH` afterwards. `--trace PATH`
/// additionally (or independently) streams a Chrome Trace Event file —
/// both can be active at once through a fan-out sink.
///
/// `--profile-folded PATH` runs the wall-clock sampling profiler for
/// the duration of the command and writes folded stacks (one
/// `stack count` line each, loadable by flamegraph.pl or speedscope)
/// to `PATH`; `--progress` arms live heartbeat updates. Both default
/// off and leave the solve bit-identical when unused.
///
/// # Errors
///
/// Returns [`CliError`] for unknown subcommands/flags, malformed values,
/// or analysis failures (each rendered with a usage hint).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = args::parse(argv)?;
    // `--threads N` overrides the STOCHCDR_THREADS env var; 0 keeps auto.
    if parsed.options.threads > 0 {
        stochcdr_linalg::par::set_threads(Some(parsed.options.threads));
    }
    // `--mem-budget` (re)publishes the soft live-heap budget every run so
    // a previous invocation's budget never leaks into this one.
    obs::mem::set_budget(parsed.options.mem_budget);
    // `--progress` (re)arms the heartbeat every run, including the
    // disarmed default, so a previous invocation's interval never leaks.
    obs::heartbeat::configure(
        parsed
            .options
            .progress
            .map(std::time::Duration::from_secs_f64),
        parsed.options.progress.is_some(),
    );
    let result = run_with_obs(&parsed);
    obs::heartbeat::configure(None, false);
    result
}

/// The body of [`run`] after the process-wide knobs are set: decides
/// whether the observability facade is needed, installs the sinks, runs
/// the profiler around the dispatch, and tears everything down again.
fn run_with_obs(parsed: &ParsedArgs) -> Result<String, CliError> {
    let metrics = parsed.options.metrics.clone();
    let trace = parsed.options.trace.clone();
    let profile_folded = parsed.options.profile_folded.clone();
    if metrics.is_none() && trace.is_none() && profile_folded.is_none() {
        // `--progress` alone needs no sink: the one-line status goes to
        // stderr directly and the events land on the disabled facade.
        return commands::dispatch(parsed);
    }

    let mut sinks: Vec<Box<dyn obs::Sink>> = Vec::new();
    if let Some(path) = &trace {
        let sink = obs::ChromeTraceSink::to_file(path)
            .map_err(|e| CliError::Analysis(format!("cannot open trace file '{path}': {e}")))?;
        sinks.push(Box::new(sink));
    }
    let summary_path = match (&metrics, parsed.options.metrics_format) {
        (Some(path), MetricsFormat::Jsonl) => {
            let sink = obs::JsonLinesSink::to_file(path).map_err(|e| {
                CliError::Analysis(format!("cannot open metrics file '{path}': {e}"))
            })?;
            sinks.push(Box::new(sink));
            None
        }
        (Some(path), MetricsFormat::Summary) => {
            sinks.push(Box::new(obs::SummarySink::new()));
            Some(path.clone())
        }
        (None, _) => None,
    };
    // `--profile-folded` without any other destination still needs the
    // facade enabled — span paths register only while a recorder is
    // installed — so a NullSink absorbs the records themselves.
    if sinks.is_empty() {
        sinks.push(Box::new(obs::NullSink));
    }
    let single = sinks.len() == 1;
    if single {
        obs::install(sinks.pop().expect("one sink"));
    } else {
        obs::install(Box::new(obs::MultiSink::new(sinks)));
    }

    obs::gauge("cli.threads", stochcdr_linalg::par::threads() as f64);
    let profiling = profile_folded.is_some()
        && obs::profile::start(std::time::Duration::from_secs_f64(
            parsed.options.profile_interval_ms / 1e3,
        ));
    let result = commands::dispatch(parsed);
    // Stop sampling before the teardown gauges so the profiler never
    // attributes samples to the facade's own bookkeeping; publish the
    // folded stacks into the artifact while the sink is still attached.
    let folded = if profiling {
        obs::profile::stop().map(|p| {
            p.publish();
            p.folded()
        })
    } else {
        None
    };
    // Memory gauges (live/peak heap, allocation count, peak RSS) describe
    // the whole command; publish them right before the sink detaches.
    obs::mem::publish();
    // Uninstall even on dispatch failure so the global recorder never
    // outlives the command that enabled it.
    let sink = obs::uninstall();
    if let Some(path) = summary_path {
        if let Some(report) = sink.and_then(|mut s| s.finish()) {
            std::fs::write(&path, report).map_err(|e| {
                CliError::Analysis(format!("cannot write metrics file '{path}': {e}"))
            })?;
        }
    }
    if let (Some(path), Some(text)) = (&profile_folded, folded) {
        std::fs::write(path, text).map_err(|e| {
            CliError::Analysis(format!("cannot write folded profile '{path}': {e}"))
        })?;
    }
    result
}
