//! Flag parsing for the `stochcdr` CLI.

use std::collections::BTreeMap;
use std::fmt;

use stochcdr::{
    CdrConfig, CdrError, CycleSchedule, FilterKind, KrylovAccel, SolverChoice,
    DEFAULT_KRYLOV_RESTART, MAX_KRYLOV_WINDOW,
};
use stochcdr_noise::jitter::WhiteJitterSpec;
use stochcdr_noise::sonet::DataSpec;

/// Errors surfaced to the terminal user.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// No subcommand or an unknown one.
    UnknownCommand(String),
    /// A flag was not recognized by the subcommand.
    UnknownFlag(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A flag was given without a value.
    MissingValue(String),
    /// Configuration or analysis failure from the library.
    Analysis(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command '{c}'\n\n{}", usage())
            }
            CliError::UnknownFlag(flag) => write!(f, "unknown flag '{flag}'"),
            CliError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "bad value '{value}' for '{flag}': expected {expected}")
            }
            CliError::MissingValue(flag) => write!(f, "flag '{flag}' needs a value"),
            CliError::Analysis(msg) => write!(f, "analysis failed: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<CdrError> for CliError {
    fn from(e: CdrError) -> Self {
        CliError::Analysis(e.to_string())
    }
}

/// Heartbeat interval, in seconds, that `--progress on` selects.
pub const DEFAULT_PROGRESS_SECS: f64 = 1.0;

/// Profiler sampling interval, in milliseconds, when `--profile-interval`
/// is not given.
pub const DEFAULT_PROFILE_INTERVAL_MS: f64 = 1.0;

/// The usage text shown for `--help` and errors.
pub fn usage() -> String {
    "usage: stochcdr <command> [--flag value]...\n\
     \n\
     commands:\n\
     \x20 analyze    stationary analysis: BER, densities, slip rate\n\
     \x20 sweep      parameter-grid sweep on the cached parallel engine:\n\
     \x20            --knob counter|dead-zone|sigma-nw|drift-ppm|refinement|filter|solver\n\
     \x20            --values a,b,c  (or multi-axis: --axes \"drift-ppm=50,100;counter=4,8\")\n\
     \x20            --warm-start on|off (default on), --out FILE (stochcdr-sweep/1 JSON)\n\
     \x20 bathtub    BER vs static sampling offset (--points N, --target BER)\n\
     \x20 slip       mean time between cycle slips + first-passage time\n\
     \x20 acquire    lock-acquisition curve and mean pull-in time (--horizon N)\n\
     \x20 jitter     recovered-clock jitter report (--max-lag N)\n\
     \x20 spy        ASCII nonzero pattern of the transition matrix (--size N)\n\
     \x20 scale      multi-lane product-form solve on the implicit Kronecker\n\
     \x20            path (--lanes N, default 2); --path auto|implicit|\n\
     \x20            materialized (default auto: implicit is selected when\n\
     \x20            materializing would cross --mem-budget)\n\
     \x20 report     render a recorded artifact (--in FILE): a stochcdr-obs\n\
     \x20            metrics JSONL stream (schema /1../4) or a Chrome trace\n\
     \x20            from --trace; --check-folded PATH verifies a folded\n\
     \x20            profile against the artifact's span paths\n\
     \x20 diff       compare two metrics artifacts (--baseline A --fresh B):\n\
     \x20            counts exact, timings/memory advisory (--rel-tol X,\n\
     \x20            default 0.5); --out FILE saves the regression report\n\
     \n\
     model flags (all commands):\n\
     \x20 --phases N           VCO phases (default 8)\n\
     \x20 --refinement N       grid bins per phase step (default 16)\n\
     \x20 --counter N          loop-filter length (default 8)\n\
     \x20 --filter KIND        counter | consecutive (default counter)\n\
     \x20 --dead-zone N        PD dead zone in grid bins (default 0)\n\
     \x20 --sigma-nw UI        white jitter sigma (default 0.05)\n\
     \x20 --dj UI              dual-Dirac deterministic jitter (default 0)\n\
     \x20 --drift-mean UI      n_r mean per symbol (default 2e-3)\n\
     \x20 --drift-dev UI       n_r max deviation (default 8e-3)\n\
     \x20 --density P          data transition density (default 0.5)\n\
     \x20 --run-length N       max identical-bit run (default 4)\n\
     \x20 --solver NAME        power|gs|jacobi|direct|mg|mgw|mgk|gmres\n\
     \x20                      (default mg; mgk = adaptive multigrid with\n\
     \x20                      Krylov window acceleration, gmres = restarted\n\
     \x20                      GMRES on the shifted stationarity system)\n\
     \x20 --cycle KIND         multigrid cycle schedule: v|f|w|adaptive\n\
     \x20                      (default: solver-specific; adaptive escalates\n\
     \x20                      V->F->W on stalling reduction factors)\n\
     \x20 --accel MODE         Krylov acceleration of multigrid solves:\n\
     \x20                      gmres (always on) | stall (arm on stall\n\
     \x20                      detection) | off (default: solver-specific)\n\
     \x20 --restart N          Krylov window length (2..=16 with --accel;\n\
     \x20                      default 8, scale 12) / gmres Arnoldi\n\
     \x20                      restart (default 50)\n\
     \x20 --tol X              stationary residual tolerance (default 1e-12)\n\
     \x20 --threads N          worker threads for parallel kernels; 0 = auto\n\
     \x20                      (flag > STOCHCDR_THREADS env > available cores)\n\
     \n\
     observability flags (all commands):\n\
     \x20 --metrics PATH       capture instrumentation records to PATH\n\
     \x20 --metrics-format F   accepted values: summary | jsonl (default\n\
     \x20                      summary, a human table; jsonl streams the\n\
     \x20                      stochcdr-obs/4 records); requires --metrics\n\
     \x20 --mem-budget BYTES   soft live-heap budget (suffixes K/M/G); the\n\
     \x20                      Kronecker path refuses to materialize past it\n\
     \x20                      and a mem.budget_exceeded event is recorded\n\
     \x20 --trace PATH         write a Chrome Trace Event JSON file (open in\n\
     \x20                      ui.perfetto.dev or chrome://tracing)\n\
     \x20 --progress V         live heartbeat: on | off | SECONDS between\n\
     \x20                      updates (on = 1); throttled solve.progress\n\
     \x20                      events plus one-line stderr status\n\
     \x20 --profile-folded P   sample the live span stacks on a wall-clock\n\
     \x20                      timer and write folded stacks to P (load in\n\
     \x20                      flamegraph.pl or speedscope)\n\
     \x20 --profile-interval M sampling interval in milliseconds (default\n\
     \x20                      1); requires --profile-folded\n"
        .to_string()
}

/// Output format for `--metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Aggregated human-readable table.
    #[default]
    Summary,
    /// One JSON object per record (`stochcdr-obs/2` schema).
    Jsonl,
}

impl MetricsFormat {
    /// The accepted `--metrics-format` values, quoted in `--help` and in
    /// rejection errors so the two can never drift apart.
    pub const EXPECTED: &'static str = "summary | jsonl";

    /// Parses a `--metrics-format` value.
    pub fn parse(v: &str) -> Option<Self> {
        match v {
            "summary" => Some(MetricsFormat::Summary),
            "jsonl" => Some(MetricsFormat::Jsonl),
            _ => None,
        }
    }
}

/// Parsed model options shared by every subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Model configuration.
    pub config: CdrConfig,
    /// Stationary solver.
    pub solver: SolverChoice,
    /// Multigrid cycle-schedule override (`--cycle v|f|w|adaptive`);
    /// `None` keeps each solver's default.
    pub cycle: Option<CycleSchedule>,
    /// Krylov-acceleration override (`--accel gmres|stall|off`): outer
    /// `None` keeps the solver's default, `Some(None)` forces it off,
    /// `Some(Some(a))` forces a window configuration (restart length from
    /// `--restart`).
    pub accel: Option<Option<KrylovAccel>>,
    /// Explicit restart length (`--restart`): the Krylov window length
    /// for accelerated multigrid (2..=16), and the Arnoldi restart of the
    /// standalone `gmres` solver. `None` keeps each consumer's default.
    pub restart: Option<usize>,
    /// Residual tolerance.
    pub tol: f64,
    /// Worker-thread count for parallel kernels (`--threads`); 0 means
    /// auto (`STOCHCDR_THREADS` env, else available parallelism).
    pub threads: usize,
    /// Where to write instrumentation records (`--metrics`), if anywhere.
    pub metrics: Option<String>,
    /// Format for the metrics file.
    pub metrics_format: MetricsFormat,
    /// Where to write a Chrome Trace Event file (`--trace`), if anywhere.
    pub trace: Option<String>,
    /// Soft live-heap budget in bytes (`--mem-budget`), if any: published
    /// to [`stochcdr_obs::mem`] so budget-aware paths (the Kronecker
    /// materialization) can refuse oversized intermediates.
    pub mem_budget: Option<u64>,
    /// Heartbeat interval in seconds (`--progress`); `None` = off.
    pub progress: Option<f64>,
    /// Folded-stack output path (`--profile-folded`); `Some` arms the
    /// wall-clock sampling profiler for the run.
    pub profile_folded: Option<String>,
    /// Profiler sampling interval in milliseconds (`--profile-interval`).
    pub profile_interval_ms: f64,
    /// Remaining subcommand-specific flags.
    pub extra: BTreeMap<String, String>,
}

/// A parsed invocation: the subcommand plus its options.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand name.
    pub command: String,
    /// Parsed options.
    pub options: Options,
}

/// Parses `argv` (without the program name).
///
/// A `--config FILE` flag may appear anywhere after the subcommand: the
/// file holds whitespace-separated `--flag value` tokens (comments start
/// with `#`) that are spliced in *before* the command-line flags, so the
/// command line overrides the file.
///
/// # Errors
///
/// See [`CliError`].
pub fn parse(argv: &[String]) -> Result<ParsedArgs, CliError> {
    let argv = expand_config_files(argv)?;
    let argv = &argv[..];
    let command = match argv.first() {
        None => return Err(CliError::UnknownCommand("(none)".into())),
        Some(c) if c == "--help" || c == "-h" || c == "help" => {
            return Ok(ParsedArgs {
                command: "help".into(),
                options: Options {
                    config: default_config()?,
                    solver: SolverChoice::Multigrid,
                    cycle: None,
                    accel: None,
                    restart: None,
                    tol: 1e-12,
                    threads: 0,
                    metrics: None,
                    metrics_format: MetricsFormat::Summary,
                    trace: None,
                    mem_budget: None,
                    progress: None,
                    profile_folded: None,
                    profile_interval_ms: DEFAULT_PROFILE_INTERVAL_MS,
                    extra: BTreeMap::new(),
                },
            })
        }
        Some(c) => c.clone(),
    };
    let known = [
        "analyze", "sweep", "bathtub", "slip", "acquire", "jitter", "spy", "scale", "report",
        "diff",
    ];
    if !known.contains(&command.as_str()) {
        return Err(CliError::UnknownCommand(command));
    }

    // Collect --flag value pairs.
    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    let mut it = argv[1..].iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(CliError::UnknownFlag(flag.clone()));
        };
        let value = it
            .next()
            .ok_or_else(|| CliError::MissingValue(flag.clone()))?;
        flags.insert(name.to_string(), value.clone());
    }

    let phases = take_usize(&mut flags, "phases", 8)?;
    let refinement = take_usize(&mut flags, "refinement", 16)?;
    let counter = take_usize(&mut flags, "counter", 8)?;
    let dead_zone = take_usize(&mut flags, "dead-zone", 0)?;
    let run_length = take_usize(&mut flags, "run-length", 4)?;
    let sigma = take_f64(&mut flags, "sigma-nw", 0.05)?;
    let dj = take_f64(&mut flags, "dj", 0.0)?;
    let drift_mean = take_f64(&mut flags, "drift-mean", 2e-3)?;
    let drift_dev = take_f64(&mut flags, "drift-dev", 8e-3)?;
    let density = take_f64(&mut flags, "density", 0.5)?;
    let tol = take_f64(&mut flags, "tol", 1e-12)?;
    let threads = take_usize(&mut flags, "threads", 0)?;

    let filter = match flags.remove("filter").as_deref() {
        None | Some("counter") => FilterKind::OverflowCounter,
        Some("consecutive") => FilterKind::ConsecutiveDetector,
        Some(v) => {
            return Err(CliError::BadValue {
                flag: "--filter".into(),
                value: v.into(),
                expected: "counter | consecutive",
            })
        }
    };
    let solver = match flags.remove("solver") {
        None => SolverChoice::Multigrid,
        Some(v) => match SolverChoice::parse(&v) {
            Some(s) => s,
            None => {
                return Err(CliError::BadValue {
                    flag: "--solver".into(),
                    value: v,
                    expected: "power|gs|jacobi|direct|mg|mgw|mgk|gmres",
                })
            }
        },
    };
    let cycle = match flags.remove("cycle") {
        None => None,
        Some(v) => match CycleSchedule::parse(&v) {
            Some(s) => Some(s),
            None => {
                return Err(CliError::BadValue {
                    flag: "--cycle".into(),
                    value: v,
                    expected: "v|f|w|adaptive",
                })
            }
        },
    };
    let restart = match flags.remove("restart") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(r) if (1..=1024).contains(&r) => Some(r),
            _ => {
                return Err(CliError::BadValue {
                    flag: "--restart".into(),
                    value: v,
                    expected: "a window/restart length in 1..=1024",
                })
            }
        },
    };
    let accel = match flags.remove("accel") {
        None => None,
        Some(v) => {
            let window = restart.unwrap_or(DEFAULT_KRYLOV_RESTART);
            if v != "off" && !(2..=MAX_KRYLOV_WINDOW).contains(&window) {
                return Err(CliError::BadValue {
                    flag: "--restart".into(),
                    value: window.to_string(),
                    expected: "a Krylov window length in 2..=16 when --accel is on",
                });
            }
            match v.as_str() {
                "off" => Some(None),
                "gmres" => Some(Some(KrylovAccel::always(window))),
                "stall" => Some(Some(KrylovAccel::on_stall(window))),
                _ => {
                    return Err(CliError::BadValue {
                        flag: "--accel".into(),
                        value: v,
                        expected: "gmres|stall|off",
                    })
                }
            }
        }
    };

    let metrics = flags.remove("metrics");
    let metrics_format = match flags.remove("metrics-format") {
        None => MetricsFormat::Summary,
        Some(v) => {
            let fmt = MetricsFormat::parse(&v).ok_or_else(|| CliError::BadValue {
                flag: "--metrics-format".into(),
                value: v.clone(),
                expected: MetricsFormat::EXPECTED,
            })?;
            // Without a destination the format would be silently ignored;
            // make the dead flag loud instead.
            if metrics.is_none() {
                return Err(CliError::BadValue {
                    flag: "--metrics-format".into(),
                    value: v,
                    expected: "to be used together with --metrics PATH",
                });
            }
            fmt
        }
    };
    let trace = flags.remove("trace");
    let mem_budget = match flags.remove("mem-budget") {
        None => None,
        Some(v) => Some(parse_mem_size(&v).ok_or_else(|| CliError::BadValue {
            flag: "--mem-budget".into(),
            value: v,
            expected: "a byte count, optionally suffixed K/M/G",
        })?),
    };

    let progress = match flags.remove("progress") {
        None => None,
        Some(v) => match v.as_str() {
            "off" => None,
            "on" => Some(DEFAULT_PROGRESS_SECS),
            s => match s.parse::<f64>() {
                Ok(secs) if secs > 0.0 && secs.is_finite() => Some(secs),
                _ => {
                    return Err(CliError::BadValue {
                        flag: "--progress".into(),
                        value: v,
                        expected: "on | off | a positive interval in seconds",
                    })
                }
            },
        },
    };
    let profile_folded = flags.remove("profile-folded");
    let profile_interval_ms = match flags.remove("profile-interval") {
        None => DEFAULT_PROFILE_INTERVAL_MS,
        Some(v) => {
            let ms = match v.parse::<f64>() {
                Ok(ms) if ms > 0.0 && ms.is_finite() => ms,
                _ => {
                    return Err(CliError::BadValue {
                        flag: "--profile-interval".into(),
                        value: v,
                        expected: "a positive interval in milliseconds",
                    })
                }
            };
            // Without a folded-output destination the sampler never starts
            // and the interval would be silently dead: reject, mirroring
            // the --metrics-format / --metrics pairing rule.
            if profile_folded.is_none() {
                return Err(CliError::BadValue {
                    flag: "--profile-interval".into(),
                    value: v,
                    expected: "to be used together with --profile-folded PATH",
                });
            }
            ms
        }
    };

    let white = if dj > 0.0 {
        WhiteJitterSpec::from_dual_dirac(dj, sigma)
    } else {
        WhiteJitterSpec::from_sigma(sigma)
    };
    let data = DataSpec::new(density, run_length).map_err(|e| CliError::Analysis(e.to_string()))?;
    let config = CdrConfig::builder()
        .phases(phases)
        .grid_refinement(refinement)
        .counter_len(counter)
        .filter_kind(filter)
        .dead_zone_bins(dead_zone)
        .data(data)
        .white(white)
        .drift(drift_mean, drift_dev)
        .build()?;

    // Whatever flags remain belong to the subcommand.
    Ok(ParsedArgs {
        command,
        options: Options {
            config,
            solver,
            cycle,
            accel,
            restart,
            tol,
            threads,
            metrics,
            metrics_format,
            trace,
            mem_budget,
            progress,
            profile_folded,
            profile_interval_ms,
            extra: flags,
        },
    })
}

/// Parses a byte size with an optional binary suffix: `1048576`,
/// `512K`, `64M`, `2G` (case-insensitive, `1024`-based).
fn parse_mem_size(v: &str) -> Option<u64> {
    let v = v.trim();
    let (digits, mult) = match v.chars().last()? {
        'k' | 'K' => (&v[..v.len() - 1], 1u64 << 10),
        'm' | 'M' => (&v[..v.len() - 1], 1u64 << 20),
        'g' | 'G' => (&v[..v.len() - 1], 1u64 << 30),
        _ => (v, 1),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_mul(mult)
}

/// Splices `--config FILE` contents into the argument list.
fn expand_config_files(argv: &[String]) -> Result<Vec<String>, CliError> {
    let mut out = Vec::with_capacity(argv.len());
    let mut file_tokens: Vec<String> = Vec::new();
    let mut it = argv.iter();
    if let Some(cmd) = it.next() {
        out.push(cmd.clone());
    }
    let mut rest = Vec::new();
    while let Some(a) = it.next() {
        if a == "--config" {
            let path = it
                .next()
                .ok_or_else(|| CliError::MissingValue("--config".into()))?;
            let text = std::fs::read_to_string(path).map_err(|e| CliError::BadValue {
                flag: "--config".into(),
                value: format!("{path}: {e}"),
                expected: "a readable file",
            })?;
            for line in text.lines() {
                let line = line.split('#').next().unwrap_or("");
                file_tokens.extend(line.split_whitespace().map(String::from));
            }
        } else {
            rest.push(a.clone());
        }
    }
    // File tokens first so explicit command-line flags win (BTreeMap insert
    // order: later wins).
    out.extend(file_tokens);
    out.extend(rest);
    Ok(out)
}

fn take_f64(
    flags: &mut BTreeMap<String, String>,
    name: &str,
    default: f64,
) -> Result<f64, CliError> {
    match flags.remove(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            flag: format!("--{name}"),
            value: v,
            expected: "a number",
        }),
    }
}

fn take_usize(
    flags: &mut BTreeMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, CliError> {
    match flags.remove(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| CliError::BadValue {
            flag: format!("--{name}"),
            value: v,
            expected: "a non-negative integer",
        }),
    }
}

fn default_config() -> Result<CdrConfig, CdrError> {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(16)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 8e-3)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let p = parse(&argv("analyze")).unwrap();
        assert_eq!(p.command, "analyze");
        assert_eq!(p.options.config.phases, 8);
        assert_eq!(p.options.config.counter_len, 8);
        assert_eq!(p.options.solver, SolverChoice::Multigrid);
    }

    #[test]
    fn flags_override_defaults() {
        let p = parse(&argv(
            "analyze --phases 4 --refinement 8 --counter 16 --sigma-nw 0.1 \
             --drift-mean 1e-3 --drift-dev 2e-2 --solver power --tol 1e-9",
        ))
        .unwrap();
        assert_eq!(p.options.config.phases, 4);
        assert_eq!(p.options.config.counter_len, 16);
        assert_eq!(p.options.config.white.sigma_ui, 0.1);
        assert_eq!(p.options.solver, SolverChoice::Power);
        assert_eq!(p.options.tol, 1e-9);
    }

    #[test]
    fn threads_flag_parses_and_defaults_to_auto() {
        assert_eq!(parse(&argv("analyze")).unwrap().options.threads, 0);
        assert_eq!(
            parse(&argv("analyze --threads 4")).unwrap().options.threads,
            4
        );
        assert!(matches!(
            parse(&argv("analyze --threads many")),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn solver_parse_goes_through_registry() {
        for choice in SolverChoice::ALL {
            let p = parse(&argv(&format!("analyze --solver {}", choice.cli_name()))).unwrap();
            assert_eq!(p.options.solver, choice);
        }
    }

    #[test]
    fn filter_and_dj_flags() {
        let p = parse(&argv("analyze --filter consecutive --dj 0.1 --counter 3")).unwrap();
        assert_eq!(
            p.options.config.filter_kind,
            FilterKind::ConsecutiveDetector
        );
        assert_eq!(p.options.config.white.dj_ui, 0.1);
    }

    #[test]
    fn subcommand_specific_flags_pass_through() {
        let p = parse(&argv("bathtub --points 31")).unwrap();
        assert_eq!(
            p.options.extra.get("points").map(String::as_str),
            Some("31")
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(CliError::UnknownCommand(_))
        ));
        assert!(matches!(
            parse(&argv("analyze --phases")),
            Err(CliError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&argv("analyze --phases abc")),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&argv("analyze --solver warp")),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&argv("analyze stray")),
            Err(CliError::UnknownFlag(_))
        ));
    }

    #[test]
    fn invalid_model_rejected_via_library_validation() {
        // Drift too small for the grid: surfaced as an analysis error.
        let e = parse(&argv(
            "analyze --refinement 1 --drift-mean 1e-6 --drift-dev 1e-5",
        ))
        .unwrap_err();
        assert!(matches!(e, CliError::Analysis(_)));
    }

    #[test]
    fn config_file_is_spliced_and_overridable() {
        let dir = std::env::temp_dir();
        let path = dir.join("stochcdr_cli_test.cfg");
        std::fs::write(
            &path,
            "# a comment\n--phases 4 --counter 16\n--sigma-nw 0.1\n",
        )
        .unwrap();
        let p = parse(&argv(&format!(
            "analyze --config {} --counter 6",
            path.display()
        )))
        .unwrap();
        assert_eq!(p.options.config.phases, 4); // from file
        assert_eq!(p.options.config.counter_len, 6); // CLI overrides file
        assert_eq!(p.options.config.white.sigma_ui, 0.1);
        std::fs::remove_file(&path).ok();
        // Missing file is a clean error.
        assert!(matches!(
            parse(&argv("analyze --config /no/such/file")),
            Err(CliError::BadValue { .. })
        ));
    }

    #[test]
    fn metrics_format_requires_a_destination() {
        // Valid when paired with --metrics.
        let p = parse(&argv("analyze --metrics m.jsonl --metrics-format jsonl")).unwrap();
        assert_eq!(p.options.metrics_format, MetricsFormat::Jsonl);
        // Unknown values name the accepted set.
        let e = parse(&argv("analyze --metrics m.jsonl --metrics-format xml")).unwrap_err();
        assert!(e.to_string().contains(MetricsFormat::EXPECTED), "{e}");
        // A format without a destination would be silently dead: reject.
        let e = parse(&argv("analyze --metrics-format jsonl")).unwrap_err();
        assert!(e.to_string().contains("--metrics"), "{e}");
        // The help text documents the accepted values.
        assert!(usage().contains(MetricsFormat::EXPECTED));
    }

    #[test]
    fn trace_flag_and_report_command_parse() {
        let p = parse(&argv("analyze --trace out.json")).unwrap();
        assert_eq!(p.options.trace.as_deref(), Some("out.json"));
        assert_eq!(parse(&argv("analyze")).unwrap().options.trace, None);
        let p = parse(&argv("report --in m.jsonl")).unwrap();
        assert_eq!(p.command, "report");
        assert_eq!(
            p.options.extra.get("in").map(String::as_str),
            Some("m.jsonl")
        );
        assert!(usage().contains("--trace"));
        assert!(usage().contains("report"));
    }

    #[test]
    fn mem_budget_parses_suffixes() {
        assert_eq!(parse(&argv("analyze")).unwrap().options.mem_budget, None);
        let p = parse(&argv("analyze --mem-budget 1048576")).unwrap();
        assert_eq!(p.options.mem_budget, Some(1 << 20));
        let p = parse(&argv("analyze --mem-budget 512K")).unwrap();
        assert_eq!(p.options.mem_budget, Some(512 << 10));
        let p = parse(&argv("analyze --mem-budget 64m")).unwrap();
        assert_eq!(p.options.mem_budget, Some(64 << 20));
        let p = parse(&argv("analyze --mem-budget 2G")).unwrap();
        assert_eq!(p.options.mem_budget, Some(2 << 30));
        assert!(matches!(
            parse(&argv("analyze --mem-budget lots")),
            Err(CliError::BadValue { .. })
        ));
        assert!(usage().contains("--mem-budget"));
    }

    #[test]
    fn diff_command_parses_with_artifact_flags() {
        let p = parse(&argv(
            "diff --baseline a.jsonl --fresh b.jsonl --rel-tol 0.2",
        ))
        .unwrap();
        assert_eq!(p.command, "diff");
        assert_eq!(
            p.options.extra.get("baseline").map(String::as_str),
            Some("a.jsonl")
        );
        assert_eq!(
            p.options.extra.get("fresh").map(String::as_str),
            Some("b.jsonl")
        );
        assert!(usage().contains("diff"));
    }

    #[test]
    fn progress_flag_parses_on_off_and_seconds() {
        assert_eq!(parse(&argv("analyze")).unwrap().options.progress, None);
        assert_eq!(
            parse(&argv("analyze --progress off"))
                .unwrap()
                .options
                .progress,
            None
        );
        assert_eq!(
            parse(&argv("analyze --progress on"))
                .unwrap()
                .options
                .progress,
            Some(DEFAULT_PROGRESS_SECS)
        );
        assert_eq!(
            parse(&argv("analyze --progress 0.25"))
                .unwrap()
                .options
                .progress,
            Some(0.25)
        );
        for bad in ["0", "-1", "soon", "inf"] {
            assert!(
                matches!(
                    parse(&argv(&format!("analyze --progress {bad}"))),
                    Err(CliError::BadValue { .. })
                ),
                "--progress {bad} should be rejected"
            );
        }
        assert!(usage().contains("--progress"));
    }

    #[test]
    fn profile_flags_parse_and_interval_requires_destination() {
        let p = parse(&argv("analyze")).unwrap();
        assert_eq!(p.options.profile_folded, None);
        assert_eq!(p.options.profile_interval_ms, DEFAULT_PROFILE_INTERVAL_MS);
        let p = parse(&argv(
            "analyze --profile-folded out.folded --profile-interval 0.5",
        ))
        .unwrap();
        assert_eq!(p.options.profile_folded.as_deref(), Some("out.folded"));
        assert_eq!(p.options.profile_interval_ms, 0.5);
        // An interval without a destination would be silently dead: reject.
        let e = parse(&argv("analyze --profile-interval 2")).unwrap_err();
        assert!(e.to_string().contains("--profile-folded"), "{e}");
        assert!(matches!(
            parse(&argv("analyze --profile-folded p --profile-interval 0")),
            Err(CliError::BadValue { .. })
        ));
        assert!(usage().contains("--profile-folded"));
        assert!(usage().contains("--profile-interval"));
    }

    #[test]
    fn help_is_supported() {
        let p = parse(&argv("--help")).unwrap();
        assert_eq!(p.command, "help");
        assert!(usage().contains("bathtub"));
    }
}
