//! The `stochcdr` command-line tool: stochastic Markov-chain performance
//! evaluation of digital clock-and-data-recovery circuits from the shell.

/// Route every allocation through the accounting wrapper so `--metrics`
/// artifacts carry per-span memory attribution and the `mem.*` gauges
/// (see `stochcdr_obs::mem`). Pass-through when the obs `alloc-track`
/// feature is disabled.
#[global_allocator]
static GLOBAL: stochcdr_obs::mem::TrackingAlloc = stochcdr_obs::mem::TrackingAlloc::new();

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match stochcdr_cli::run(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
