//! The `stochcdr` command-line tool: stochastic Markov-chain performance
//! evaluation of digital clock-and-data-recovery circuits from the shell.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match stochcdr_cli::run(&argv) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
