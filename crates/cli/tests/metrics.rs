//! End-to-end tests for the `--metrics` observability flags.
//!
//! Both formats run inside one test function: the obs recorder is a
//! process-wide singleton, so sequencing the two captures avoids
//! cross-test interference without any locking.

use stochcdr_cli::run;
use stochcdr_obs::json::Json;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

#[test]
fn metrics_capture_jsonl_and_summary() {
    let dir = std::env::temp_dir();
    let jsonl_path = dir.join("stochcdr_metrics_test.jsonl");
    let summary_path = dir.join("stochcdr_metrics_test.txt");

    // JSONL: every line parses, the schema header leads, and the stream
    // carries per-cycle residuals, smoothing counters, and the TPM nnz.
    let out = run(&argv(&format!(
        "analyze --refinement 8 --metrics {} --metrics-format jsonl",
        jsonl_path.display()
    )))
    .expect("analyze with jsonl metrics");
    assert!(out.contains("BER"), "analysis output unaffected: {out}");
    assert!(
        !stochcdr_obs::enabled(),
        "recorder must be uninstalled after run()"
    );

    let text = std::fs::read_to_string(&jsonl_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 10, "expected a substantive record stream");
    let mut cycle_events = 0;
    let mut tpm_nnz = None;
    let mut sweep_counters = 0;
    for (i, line) in lines.iter().enumerate() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("line {i} invalid: {e}\n{line}"));
        let kind = v.get("kind").and_then(Json::as_str).expect("kind field");
        if i == 0 {
            assert_eq!(kind, "meta");
            assert_eq!(
                v.get("schema").and_then(Json::as_str),
                Some(stochcdr_obs::SCHEMA_VERSION)
            );
            continue;
        }
        let name = v.get("name").and_then(Json::as_str).unwrap_or_default();
        if kind == "event" && name == "multigrid.cycle" {
            cycle_events += 1;
            let fields = v.get("fields").expect("event fields");
            assert!(fields.get("residual").and_then(Json::as_f64).unwrap() >= 0.0);
            assert!(fields.get("cycle").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        if kind == "event" && name == "fsm.tpm_assembled" {
            tpm_nnz = v
                .get("fields")
                .and_then(|f| f.get("nnz"))
                .and_then(Json::as_f64);
        }
        if kind == "counter" && name.starts_with("multigrid.smooth_sweeps.level") {
            sweep_counters += 1;
        }
    }
    assert!(cycle_events > 0, "per-cycle residual events missing");
    assert!(tpm_nnz.unwrap_or(0.0) > 0.0, "TPM nnz event missing");
    assert!(sweep_counters > 0, "per-level smoothing counters missing");

    // Summary: the default format writes an aggregated table.
    run(&argv(&format!(
        "analyze --refinement 8 --metrics {}",
        summary_path.display()
    )))
    .expect("analyze with summary metrics");
    let table = std::fs::read_to_string(&summary_path).unwrap();
    assert!(table.contains(stochcdr_obs::SCHEMA_VERSION), "{table}");
    assert!(table.contains("multigrid.solve"), "{table}");
    assert!(table.contains("multigrid.smooth_sweeps.level0"), "{table}");
    assert!(table.contains("fsm.tpm_assembled"), "{table}");

    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&summary_path).ok();
}

#[test]
fn bad_metrics_format_rejected() {
    let err = run(&argv("analyze --metrics /tmp/x --metrics-format yaml")).unwrap_err();
    assert!(err.to_string().contains("summary | jsonl"), "{err}");
}
