//! End-to-end tests for the `diff` subcommand: capture two metrics
//! artifacts, compare them, and check both the green path and a real
//! regression.
//!
//! Lives in its own test binary (like `metrics.rs` / `trace_report.rs`)
//! because the obs recorder is a process-wide singleton; all captures
//! here are sequenced inside one test function.

use stochcdr_cli::run;

/// The tool binaries route allocations through the accounting wrapper;
/// doing the same here lets the captured artifacts carry real per-span
/// memory attribution, exercising the advisory side of the diff.
#[global_allocator]
static GLOBAL: stochcdr_obs::mem::TrackingAlloc = stochcdr_obs::mem::TrackingAlloc::new();

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

const SMALL: &str = "--phases 4 --refinement 2 --counter 4 --sigma-nw 0.08 \
                     --drift-mean 2e-2 --drift-dev 8e-2";

#[test]
fn diff_passes_on_identical_runs_and_fails_on_drift() {
    let dir = std::env::temp_dir();
    let a = dir.join("stochcdr_cli_diff_a.jsonl");
    let b = dir.join("stochcdr_cli_diff_b.jsonl");
    let c = dir.join("stochcdr_cli_diff_c.jsonl");
    let report = dir.join("stochcdr_cli_diff_report.txt");
    // Two identical-configuration captures and one with a different phase
    // detector (a dead zone changes the chain, hence counters and events).
    for (path, extra) in [(&a, ""), (&b, ""), (&c, "--dead-zone 1")] {
        run(&argv(&format!(
            "analyze {SMALL} {extra} --metrics {} --metrics-format jsonl",
            path.display()
        )))
        .unwrap();
    }

    let out = run(&argv(&format!(
        "diff --baseline {} --fresh {} --out {}",
        a.display(),
        b.display(),
        report.display()
    )))
    .unwrap();
    assert!(out.contains("result: 0 failure(s)"), "{out}");
    let saved = std::fs::read_to_string(&report).unwrap();
    assert_eq!(saved, out);

    let err = run(&argv(&format!(
        "diff --baseline {} --fresh {}",
        a.display(),
        c.display()
    )))
    .unwrap_err();
    assert!(err.to_string().contains("drifted"), "{err}");

    // Unreadable input, missing flags, and bad tolerances are clean errors.
    assert!(run(&argv(
        "diff --baseline /no/such.jsonl --fresh /no/such.jsonl"
    ))
    .is_err());
    assert!(run(&argv(&format!("diff --baseline {}", a.display()))).is_err());
    assert!(run(&argv(&format!(
        "diff --baseline {} --fresh {} --rel-tol -1",
        a.display(),
        b.display()
    )))
    .is_err());

    for p in [&a, &b, &c, &report] {
        std::fs::remove_file(p).ok();
    }
}
