//! End-to-end tests for `--trace` and the `report` subcommand.
//!
//! Lives in its own integration binary so the process-wide obs recorder
//! never races the `--metrics` tests.

use stochcdr_cli::run;
use stochcdr_obs::artifact;
use stochcdr_obs::json::Json;

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(String::from).collect()
}

#[test]
fn trace_capture_and_report_render() {
    let dir = std::env::temp_dir();
    let trace_path = dir.join("stochcdr_trace_test.json");
    let jsonl_path = dir.join("stochcdr_trace_test_metrics.jsonl");

    let out = run(&argv(&format!(
        "analyze --refinement 8 --threads 2 \
         --trace {} --metrics {} --metrics-format jsonl",
        trace_path.display(),
        jsonl_path.display()
    )))
    .expect("analyze with trace + metrics");
    assert!(out.contains("BER"), "analysis output unaffected: {out}");
    assert!(
        !stochcdr_obs::enabled(),
        "recorder must be uninstalled after run()"
    );

    // The trace file is one valid JSON array of Chrome Trace events.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let parsed = Json::parse(&text).expect("trace parses as JSON");
    match &parsed {
        Json::Arr(events) => assert!(events.len() > 20, "substantive trace"),
        other => panic!("trace root must be an array, got {other:?}"),
    }

    // Structural check: balanced begin/end per span name, and the span
    // hierarchy the acceptance criteria name — assembly, multigrid
    // cycles, per-level smoothing — plus worker lanes beyond lane 0.
    let check = artifact::check_trace(&text).expect("trace structure");
    assert!(
        check.unbalanced.is_empty(),
        "unbalanced: {:?}",
        check.unbalanced
    );
    assert_eq!(check.begins, check.ends);
    for name in ["fsm.tpm_build_rows", "cycle", "smooth", "mg.level0"] {
        assert!(
            check.span_counts.keys().any(|k| k.contains(name)),
            "span '{name}' missing from trace: {:?}",
            check.span_counts.keys().collect::<Vec<_>>()
        );
    }
    assert!(
        check.threads >= 1,
        "at least the main lane: {}",
        check.threads
    );

    // Begin events carry parent ids that link cycles under the solve span.
    let mut saw_child = false;
    if let Json::Arr(events) = &parsed {
        for e in events {
            if e.get("ph").and_then(Json::as_str) == Some("B")
                && e.get("args")
                    .and_then(|a| a.get("parent"))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
                    > 0.0
            {
                saw_child = true;
                break;
            }
        }
    }
    assert!(saw_child, "no nested span recorded a nonzero parent id");

    // `report` renders both artifact flavours.
    let report =
        run(&argv(&format!("report --in {}", trace_path.display()))).expect("report on trace");
    assert!(report.contains("chrome trace"), "{report}");
    assert!(report.contains("balanced"), "{report}");

    let report = run(&argv(&format!("report --in {}", jsonl_path.display())))
        .expect("report on metrics jsonl");
    assert!(report.contains("metrics artifact"), "{report}");
    assert!(report.contains("multigrid.cycle.ns"), "{report}");
    assert!(report.contains("histograms"), "{report}");

    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&jsonl_path).ok();

    // Sequenced in the same test as the capture above: the obs recorder
    // is a process-wide singleton. `sweep` fans warm chunks (8 points
    // each) out through `par::map_tasks`, which has no size cutoff — so
    // nine tiny points make two tasks and exercise the per-thread lanes.
    let trace_path = std::env::temp_dir().join("stochcdr_sweep_trace_test.json");
    run(&argv(&format!(
        "sweep --phases 4 --refinement 2 --counter 4 --sigma-nw 0.08 \
         --drift-mean 2e-2 --drift-dev 8e-2 --knob counter \
         --values 2,3,4,5,6,7,8,9,10 --threads 2 --trace {}",
        trace_path.display()
    )))
    .expect("sweep with trace");

    let text = std::fs::read_to_string(&trace_path).unwrap();
    let check = artifact::check_trace(&text).expect("trace structure");
    assert!(
        check.unbalanced.is_empty(),
        "unbalanced: {:?}",
        check.unbalanced
    );
    assert!(
        check.threads >= 2,
        "expected par worker lanes, saw {} thread(s)",
        check.threads
    );
    assert!(
        check.span_counts.keys().any(|k| k.contains("par.worker")),
        "worker spans missing: {:?}",
        check.span_counts.keys().collect::<Vec<_>>()
    );
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn report_rejects_missing_and_malformed_input() {
    let err = run(&argv("report")).unwrap_err();
    assert!(err.to_string().contains("--in"), "{err}");

    let err = run(&argv("report --in /nonexistent/stochcdr.jsonl")).unwrap_err();
    assert!(err.to_string().contains("cannot read"), "{err}");

    let bad = std::env::temp_dir().join("stochcdr_report_bad.jsonl");
    std::fs::write(&bad, "not json\n").unwrap();
    let err = run(&argv(&format!("report --in {}", bad.display()))).unwrap_err();
    assert!(err.to_string().contains("invalid"), "{err}");
    std::fs::remove_file(&bad).ok();
}
