//! Restarted GMRES for general sparse linear systems.
//!
//! The paper notes that aggregation/disaggregation can accelerate "basic
//! iterative methods such as Jacobi and Gauss–Seidel and possibly the
//! Krylov subspace methods". GMRES is the workhorse Krylov method for the
//! non-symmetric systems that arise here — in particular the modified-TPM
//! first-passage systems `(I − Q) t = 1`, where it converges orders of
//! magnitude faster than stationary sweeps.

use crate::{vecops, LinalgError, Result, TransitionOp};
use stochcdr_obs as obs;

/// Configuration for [`gmres`].
#[derive(Debug, Clone, PartialEq)]
pub struct GmresOptions {
    /// Restart length (Krylov subspace dimension per cycle).
    pub restart: usize,
    /// Relative residual tolerance `||b − Ax|| / ||b||`.
    pub tol: f64,
    /// Maximum total iterations (inner steps across restarts).
    pub max_iters: usize,
}

impl Default for GmresOptions {
    /// Restart 50, tolerance `1e-10`, budget `100_000` iterations.
    fn default() -> Self {
        GmresOptions {
            restart: 50,
            tol: 1e-10,
            max_iters: 100_000,
        }
    }
}

/// Outcome of a GMRES solve.
#[derive(Debug, Clone, PartialEq)]
pub struct GmresResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Inner iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub rel_residual: f64,
}

/// Solves `A x = b` with restarted GMRES(m).
///
/// `A` is any [`TransitionOp`] backend — only `A·x` products are taken,
/// so structured operators never materialize. `x0` optionally seeds the
/// iteration (zero vector otherwise).
///
/// # Errors
///
/// * [`LinalgError::ShapeMismatch`] for inconsistent dimensions,
/// * [`LinalgError::SingularMatrix`] when the iteration stagnates without
///   reaching the tolerance within the budget (reported with the last
///   step index and residual in the `pivot` field).
pub fn gmres(
    a: &dyn TransitionOp,
    b: &[f64],
    x0: Option<&[f64]>,
    opts: &GmresOptions,
) -> Result<GmresResult> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::ShapeMismatch(format!(
            "GMRES needs a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch(format!(
            "rhs length {} != dimension {n}",
            b.len()
        )));
    }
    let mut x = match x0 {
        Some(v) if v.len() == n => v.to_vec(),
        Some(v) => {
            return Err(LinalgError::ShapeMismatch(format!(
                "x0 length {} != dimension {n}",
                v.len()
            )))
        }
        None => vec![0.0; n],
    };
    let b_norm = vecops::norm2(b).max(f64::MIN_POSITIVE);
    let m = opts.restart.max(1);
    let mut total_iters = 0usize;
    let mut rel = f64::INFINITY;

    while total_iters < opts.max_iters {
        // r = b − A x.
        let ax = a.mul_right(&x);
        let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let beta = vecops::norm2(&r);
        rel = beta / b_norm;
        if rel <= opts.tol {
            obs::event(
                "linalg.gmres",
                &[
                    ("iterations", total_iters.into()),
                    ("rel_residual", rel.into()),
                ],
            );
            return Ok(GmresResult {
                x,
                iterations: total_iters,
                rel_residual: rel,
            });
        }
        vecops::scale(1.0 / beta, &mut r);

        // Arnoldi with Givens-rotated Hessenberg (column-major storage).
        let mut v: Vec<Vec<f64>> = vec![r];
        let mut h: Vec<Vec<f64>> = Vec::new(); // h[j] = column j, length j+2
        let mut cs: Vec<f64> = Vec::new();
        let mut sn: Vec<f64> = Vec::new();
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;
        let mut k_used = 0usize;

        for j in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = A v_j, modified Gram–Schmidt.
            let mut w = a.mul_right(&v[j]);
            let mut hj = vec![0.0f64; j + 2];
            for (i, vi) in v.iter().enumerate() {
                let hij = vecops::dot(&w, vi);
                hj[i] = hij;
                vecops::axpy(-hij, vi, &mut w);
            }
            let wnorm = vecops::norm2(&w);
            hj[j + 1] = wnorm;

            // Apply existing Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation to annihilate hj[j+1].
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            let (c, s) = if denom > 0.0 {
                (hj[j] / denom, hj[j + 1] / denom)
            } else {
                (1.0, 0.0)
            };
            cs.push(c);
            sn.push(s);
            hj[j] = c * hj[j] + s * hj[j + 1];
            hj[j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            h.push(hj);
            k_used = j + 1;

            rel = g[j + 1].abs() / b_norm;
            let breakdown = wnorm <= 1e-14 * b_norm;
            if rel <= opts.tol || breakdown {
                break;
            }
            vecops::scale(1.0 / wnorm, &mut w);
            v.push(w);
        }

        // Back-substitute y from the triangularized H and update x.
        let mut y = vec![0.0f64; k_used];
        for i in (0..k_used).rev() {
            let mut acc = g[i];
            for (kk, yk) in y.iter().enumerate().take(k_used).skip(i + 1) {
                acc -= h[kk][i] * yk;
            }
            let hii = h[i][i];
            if hii.abs() < 1e-300 {
                return Err(LinalgError::SingularMatrix {
                    step: i,
                    pivot: hii,
                });
            }
            y[i] = acc / hii;
        }
        for (j, yj) in y.iter().enumerate() {
            vecops::axpy(*yj, &v[j], &mut x);
        }
        if rel <= opts.tol {
            obs::event(
                "linalg.gmres",
                &[
                    ("iterations", total_iters.into()),
                    ("rel_residual", rel.into()),
                ],
            );
            return Ok(GmresResult {
                x,
                iterations: total_iters,
                rel_residual: rel,
            });
        }
    }
    Err(LinalgError::SingularMatrix {
        step: total_iters,
        pivot: rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, CsrMatrix};

    fn mat(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    #[test]
    fn solves_small_spd_system() {
        let a = mat(2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
        let r = gmres(&a, &[1.0, 2.0], None, &GmresOptions::default()).unwrap();
        let back = a.mul_right(&r.x);
        assert!((back[0] - 1.0).abs() < 1e-8);
        assert!((back[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let a = mat(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 0, 0.5),
                (2, 2, 4.0),
            ],
        );
        let b = [1.0, -2.0, 3.0];
        let r = gmres(&a, &b, None, &GmresOptions::default()).unwrap();
        let back = a.mul_right(&r.x);
        for (x, y) in back.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    fn exact_in_n_steps_without_restart() {
        // GMRES is exact after n steps for a nonsingular system.
        let n = 20;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0 + i as f64 * 0.1);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -0.5);
            }
        }
        let a = coo.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i % 3) as f64 + 1.0).collect();
        let opts = GmresOptions {
            restart: n,
            tol: 1e-12,
            max_iters: n + 1,
        };
        let r = gmres(&a, &b, None, &opts).unwrap();
        assert!(r.iterations <= n);
        assert!(r.rel_residual < 1e-10);
    }

    #[test]
    fn restarting_still_converges() {
        let n = 40;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
            }
        }
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let opts = GmresOptions {
            restart: 5,
            tol: 1e-10,
            max_iters: 10_000,
        };
        let r = gmres(&a, &b, None, &opts).unwrap();
        let back = a.mul_right(&r.x);
        for v in back {
            assert!((v - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn warm_start_helps() {
        let a = mat(2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        let exact = [0.5, 1.0];
        let r = gmres(&a, &[1.0, 2.0], Some(&exact), &GmresOptions::default()).unwrap();
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let a = mat(2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        assert!(gmres(&a, &[1.0], None, &GmresOptions::default()).is_err());
        assert!(gmres(&a, &[1.0, 1.0], Some(&[0.0]), &GmresOptions::default()).is_err());
        let rect = CooMatrix::new(2, 3).to_csr();
        assert!(gmres(&rect, &[1.0, 1.0], None, &GmresOptions::default()).is_err());
    }

    #[test]
    fn budget_exhaustion_reports_failure() {
        let a = mat(2, &[(0, 0, 1.0), (0, 1, -1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let opts = GmresOptions {
            restart: 1,
            tol: 1e-16,
            max_iters: 2,
        };
        // With such a tight tolerance and tiny budget the solve cannot finish.
        let result = gmres(&a, &[1.0, 5.0], None, &opts);
        assert!(result.is_err());
    }
}
