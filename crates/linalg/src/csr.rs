//! Compressed sparse row matrix — the workhorse storage format.

use std::sync::OnceLock;

use crate::par::{RowPartition, PARALLEL_NNZ_CUTOFF};
use crate::{CooMatrix, CscMatrix, DenseMatrix, LinalgError, Result};

/// An immutable sparse matrix in compressed sparse row (CSR) format.
///
/// Column indices within each row are sorted and unique. `CsrMatrix` is the
/// storage used for transition probability matrices throughout the
/// workspace; the hot kernels are [`mul_left`](Self::mul_left) (`y = x A`,
/// the stationary-distribution iteration) and
/// [`mul_right`](Self::mul_right) (`y = A x`, first-passage solves).
///
/// # Example
///
/// ```
/// use stochcdr_linalg::{CooMatrix, CsrMatrix};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(1, 0, 0.5);
/// coo.push(1, 1, 0.5);
/// let a: CsrMatrix = coo.to_csr();
/// assert_eq!(a.mul_right(&[2.0, 4.0]), vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<f64>,
    /// Memoized nnz-balanced row blocking for the parallel kernels. Built
    /// on first use; a pure function of `indptr`, so it survives numeric
    /// refreshes through [`data_mut`](Self::data_mut) untouched.
    part: OnceLock<RowPartition>,
}

/// Equality is structural (shape, pattern, values); whether the cached
/// row partition has been built yet is a memoization detail.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
            && self.data == other.data
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw components.
    ///
    /// This is the cheap, trusted constructor used by [`CooMatrix::to_csr`];
    /// invariants are checked with debug assertions only.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the structure is inconsistent.
    pub(crate) fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), data.len());
        debug_assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        debug_assert!(indices.iter().all(|&c| (c as usize) < cols || cols == 0));
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
            part: OnceLock::new(),
        }
    }

    /// Builds a CSR matrix from pre-assembled row data, validating the
    /// structural invariants.
    ///
    /// This is the public entry point for assemblers that build rows
    /// directly (e.g. the parallel TPM row assembly in `stochcdr-fsm`)
    /// and so skip the COO round trip. Within each row, column indices
    /// must be strictly ascending (sorted and duplicate-free) and in
    /// bounds.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the component lengths are
    /// inconsistent, an index is out of bounds, or a row's indices are not
    /// strictly ascending.
    pub fn from_sorted_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1
            || indices.len() != data.len()
            || indptr.first() != Some(&0)
            || *indptr.last().unwrap_or(&0) != indices.len()
        {
            return Err(LinalgError::ShapeMismatch(format!(
                "csr parts inconsistent: {rows} rows, indptr len {}, {} indices, {} values",
                indptr.len(),
                indices.len(),
                data.len()
            )));
        }
        for r in 0..rows {
            let (lo, hi) = (indptr[r], indptr[r + 1]);
            if lo > hi || hi > indices.len() {
                return Err(LinalgError::ShapeMismatch(format!(
                    "row {r} has invalid extent {lo}..{hi}"
                )));
            }
            let row = &indices[lo..hi];
            if row.iter().any(|&c| c as usize >= cols) {
                return Err(LinalgError::ShapeMismatch(format!(
                    "row {r} has a column index out of bounds (cols = {cols})"
                )));
            }
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(LinalgError::ShapeMismatch(format!(
                    "row {r} columns are not strictly ascending"
                )));
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
            part: OnceLock::new(),
        })
    }

    /// Builds an empty `rows x cols` matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
            part: OnceLock::new(),
        }
    }

    /// Builds the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            data: vec![1.0; n],
            part: OnceLock::new(),
        }
    }

    /// Builds a square matrix with the given diagonal.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(n);
        let mut data = Vec::with_capacity(n);
        indptr.push(0);
        for (i, &d) in diag.iter().enumerate() {
            if d != 0.0 {
                indices.push(i as u32);
                data.push(d);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: n,
            cols: n,
            indptr,
            indices,
            data,
            part: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array (length `rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array (length `nnz`).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Value array (length `nnz`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the value array (length `nnz`).
    ///
    /// The sparsity structure (`indptr`, `indices`) stays immutable; this
    /// exists for numeric-refresh paths (e.g. the multigrid setup/numeric
    /// split) that overwrite values in a fixed pattern without
    /// reallocating.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the value at `(row, col)`, or `0.0` if not stored.
    ///
    /// Binary-searches the row; O(log nnz(row)).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (lo, hi) = (self.indptr[row], self.indptr[row + 1]);
        match self.indices[lo..hi].binary_search(&(col as u32)) {
            Ok(k) => self.data[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(col, value)` pairs of one row, in column
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    pub fn row(&self, row: usize) -> RowIter<'_> {
        assert!(
            row < self.rows,
            "row {row} out of bounds for {} rows",
            self.rows
        );
        let (lo, hi) = (self.indptr[row], self.indptr[row + 1]);
        RowIter {
            indices: &self.indices[lo..hi],
            data: &self.data[lo..hi],
            pos: 0,
        }
    }

    /// Number of stored entries in one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.indptr[row + 1] - self.indptr[row]
    }

    /// Iterates over all stored triplets `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Computes `y = x A` where `x` is a row vector of length `rows`.
    ///
    /// This is the kernel of every stationary-distribution iteration
    /// (`eta_{k+1} = eta_k P`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn mul_left(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.mul_left_into(x, &mut y);
        y
    }

    /// In-place variant of [`mul_left`](Self::mul_left); `y` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "x length must equal row count");
        assert_eq!(y.len(), self.cols, "y length must equal column count");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
            for k in lo..hi {
                y[self.indices[k] as usize] += xr * self.data[k];
            }
        }
    }

    /// Computes `y = A x` where `x` is a column vector of length `cols`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_right(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_right_into(x, &mut y);
        y
    }

    /// The memoized nnz-balanced [`RowPartition`] of this matrix.
    ///
    /// Built on first call from the index pointer (one binary search per
    /// ~32k-nnz block) and cached for the lifetime of the matrix; the
    /// pattern is immutable, so the blocking never goes stale — numeric
    /// refreshes through [`data_mut`](Self::data_mut) reuse it as-is.
    /// Because caches like the sweep engine's `FactorCache` share
    /// operators behind `Arc`s, one partition serves every sweep point
    /// that reuses the operator.
    pub fn row_partition(&self) -> &RowPartition {
        self.part
            .get_or_init(|| RowPartition::from_weight_prefix(&self.indptr))
    }

    /// In-place variant of [`mul_right`](Self::mul_right); `y` is overwritten.
    ///
    /// Large products fan out across the [`crate::par`] worker pool over
    /// the memoized [`row_partition`](Self::row_partition): fixed,
    /// nnz-balanced, L2-sized row blocks that workers steal from a shared
    /// cursor. Each `y[r]` is still accumulated by a single worker in
    /// ascending stored-entry order and the block fence never depends on
    /// the thread count, so the result is bit-identical for every thread
    /// count. Products under [`PARALLEL_NNZ_CUTOFF`] stored entries stay
    /// on a serial path and never build the partition.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length must equal column count");
        assert_eq!(y.len(), self.rows, "y length must equal row count");
        if self.nnz() < PARALLEL_NNZ_CUTOFF {
            if !y.is_empty() {
                self.mul_right_range(0, x, y);
            }
            return;
        }
        crate::par::for_each_partition_mut(y, self.row_partition(), |start, chunk| {
            self.mul_right_range(start, x, chunk)
        });
    }

    /// Computes rows `start..start + y.len()` of `A x` into `y`.
    fn mul_right_range(&self, start: usize, x: &[f64], y: &mut [f64]) {
        for (i, yr) in y.iter_mut().enumerate() {
            let r = start + i;
            let (lo, hi) = (self.indptr[r], self.indptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.data[k] * x[self.indices[k] as usize];
            }
            *yr = acc;
        }
    }

    /// Returns the transpose as a new CSR matrix.
    ///
    /// O(nnz + rows + cols); the result has sorted, unique column indices.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for k in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[k] as usize;
                let slot = next[c];
                indices[slot] = r as u32;
                data[slot] = self.data[k];
                next[c] += 1;
            }
        }
        // Rows were visited in increasing order, so each transposed row is
        // already sorted by (former-row) column index.
        indptr.truncate(self.cols + 1);
        CsrMatrix::from_raw_parts(self.cols, self.rows, indptr, indices, data)
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_transposed_csr(self.transpose())
    }

    /// Converts to a dense matrix.
    ///
    /// Intended for small matrices (coarse-grid solves, tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            d[(r, c)] = v;
        }
        d
    }

    /// Sparse matrix product `C = A B`.
    ///
    /// Classical Gustavson row-by-row algorithm with a dense accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::new();
        let mut data: Vec<f64> = Vec::new();
        let mut acc = vec![0.0f64; other.cols];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..self.rows {
            touched.clear();
            for (k, va) in self.row(r) {
                for (j, vb) in other.row(k) {
                    if acc[j] == 0.0 && !touched.contains(&(j as u32)) {
                        touched.push(j as u32);
                    }
                    acc[j] += va * vb;
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                let v = acc[j as usize];
                if v != 0.0 {
                    indices.push(j);
                    data.push(v);
                }
                acc[j as usize] = 0.0;
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_raw_parts(
            self.rows, other.cols, indptr, indices, data,
        ))
    }

    /// Returns the vector of row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.data[self.indptr[r]..self.indptr[r + 1]].iter().sum())
            .collect()
    }

    /// Returns the vector of column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for (k, &c) in self.indices.iter().enumerate() {
            sums[c as usize] += self.data[k];
        }
        sums
    }

    /// Returns the main diagonal as a dense vector.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        let mut out = vec![0.0; n];
        self.diagonal_into(&mut out);
        out
    }

    /// Writes the main diagonal into a caller-provided buffer.
    ///
    /// Same values as [`diagonal`](Self::diagonal); repeated smoothing
    /// sweeps hoist the buffer out of their inner loop.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != min(rows, cols)`.
    pub fn diagonal_into(&self, out: &mut [f64]) {
        let n = self.rows.min(self.cols);
        assert_eq!(out.len(), n, "diagonal buffer length must match");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.get(i, i);
        }
    }

    /// Returns a copy with every row scaled by the corresponding factor.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len() != rows`.
    pub fn scale_rows(&self, factors: &[f64]) -> CsrMatrix {
        assert_eq!(factors.len(), self.rows, "one factor per row required");
        let mut out = self.clone();
        for (r, &factor) in factors.iter().enumerate() {
            for k in out.indptr[r]..out.indptr[r + 1] {
                out.data[k] *= factor;
            }
        }
        out
    }

    /// Returns a copy with all entries of magnitude `<= tol` removed.
    pub fn prune(&self, tol: f64) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                if v.abs() > tol {
                    indices.push(c as u32);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, indptr, indices, data)
    }

    /// Computes `self + alpha * other` entrywise.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&self, alpha: f64, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "{}x{} + {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz() + other.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        for (r, c, v) in other.iter() {
            coo.push(r, c, alpha * v);
        }
        Ok(coo.to_csr())
    }

    /// Maximum absolute value of any stored entry (`0.0` if empty).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Converts back to a triplet builder (e.g. to edit entries).
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v);
        }
        coo
    }

    /// Extracts the square submatrix over `keep` rows/columns, in the order
    /// given.
    ///
    /// Used to form the `Q` block (transient-to-transient transitions) of an
    /// absorbing chain.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or any index is out of bounds.
    pub fn submatrix(&self, keep: &[usize]) -> CsrMatrix {
        assert_eq!(
            self.rows, self.cols,
            "submatrix extraction requires a square matrix"
        );
        let mut map = vec![u32::MAX; self.cols];
        for (new, &old) in keep.iter().enumerate() {
            assert!(old < self.rows, "index {old} out of bounds");
            map[old] = new as u32;
        }
        let mut indptr = Vec::with_capacity(keep.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        let mut rowbuf: Vec<(u32, f64)> = Vec::new();
        for &old in keep {
            rowbuf.clear();
            for (c, v) in self.row(old) {
                let nc = map[c];
                if nc != u32::MAX {
                    rowbuf.push((nc, v));
                }
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &rowbuf {
                indices.push(c);
                data.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(keep.len(), keep.len(), indptr, indices, data)
    }
}

/// Iterator over the stored `(col, value)` pairs of one CSR row.
#[derive(Debug, Clone)]
pub struct RowIter<'a> {
    indices: &'a [u32],
    data: &'a [f64],
    pos: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.indices.len() {
            let item = (self.indices[self.pos] as usize, self.data[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.indices.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<'a> ExactSizeIterator for RowIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 2 0]
        // [0 0 3]
        // [4 0 5]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 0, 4.0);
        coo.push(2, 2, 5.0);
        coo.to_csr()
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let a = sample();
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 0), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn mul_left_matches_dense() {
        let a = sample();
        let y = a.mul_left(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![13.0, 2.0, 21.0]);
    }

    #[test]
    fn mul_right_matches_dense() {
        let a = sample();
        let y = a.mul_right(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![5.0, 9.0, 19.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn transpose_swaps_entries() {
        let a = sample().transpose();
        assert_eq!(a.get(1, 0), 2.0);
        assert_eq!(a.get(2, 1), 3.0);
        assert_eq!(a.get(0, 2), 4.0);
    }

    #[test]
    fn matmul_matches_dense() {
        let a = sample();
        let b = sample();
        let c = a.matmul(&b).unwrap();
        // dense check
        let ad = a.to_dense();
        let bd = b.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                let mut acc = 0.0;
                for k in 0..3 {
                    acc += ad[(i, k)] * bd[(k, j)];
                }
                assert!((c.get(i, j) - acc).abs() < 1e-12, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = sample();
        let b = CsrMatrix::zeros(2, 2);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn identity_is_neutral() {
        let a = sample();
        let i = CsrMatrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn row_and_col_sums() {
        let a = sample();
        assert_eq!(a.row_sums(), vec![3.0, 3.0, 9.0]);
        assert_eq!(a.col_sums(), vec![5.0, 2.0, 8.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 0.0, 5.0]);
    }

    #[test]
    fn scale_rows_scales() {
        let a = sample().scale_rows(&[1.0, 2.0, 0.5]);
        assert_eq!(a.get(1, 2), 6.0);
        assert_eq!(a.get(2, 2), 2.5);
    }

    #[test]
    fn prune_removes_small_entries() {
        let a = sample().prune(2.5);
        assert_eq!(a.nnz(), 3); // 3.0, 4.0, 5.0 survive
        let a = sample().prune(3.5);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn add_scaled_combines() {
        let a = sample();
        let s = a.add_scaled(-1.0, &a).unwrap();
        assert_eq!(s.nnz(), 0);
        let d = a.add_scaled(1.0, &CsrMatrix::identity(3)).unwrap();
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 1), 1.0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let a = sample();
        let s = a.submatrix(&[0, 2]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 0), 1.0); // old (0,0)
        assert_eq!(s.get(1, 0), 4.0); // old (2,0)
        assert_eq!(s.get(1, 1), 5.0); // old (2,2)
        assert_eq!(s.get(0, 1), 0.0); // old (0,2) was zero
    }

    #[test]
    fn from_diagonal_constructs() {
        let d = CsrMatrix::from_diagonal(&[1.0, 0.0, 3.0]);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(2, 2), 3.0);
    }

    #[test]
    fn row_iter_is_exact_size() {
        let a = sample();
        let it = a.row(2);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn max_abs_works() {
        assert_eq!(sample().max_abs(), 5.0);
        assert_eq!(CsrMatrix::zeros(2, 2).max_abs(), 0.0);
    }

    #[test]
    fn mul_right_is_thread_count_invariant_on_skewed_rows() {
        // Heavily skewed nnz distribution (one dense row, many sparse
        // ones) pushed above the weighted parallel gate: the nnz-balanced
        // chunking must still produce the serial bits.
        let n = 2048;
        let mut coo = CooMatrix::new(n, n);
        for j in 0..n {
            coo.push(0, j, 1.0 / (j as f64 + 1.0));
        }
        for i in 1..n {
            for k in 0..96 {
                coo.push(i, (i * 13 + k * 29) % n, (i * 8 + k) as f64 * 1e-4);
            }
        }
        let a = coo.to_csr();
        assert!(a.nnz() >= crate::par::PARALLEL_NNZ_CUTOFF);
        let _g = crate::par::TEST_THREADS_LOCK.lock().unwrap();
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 2.0)).collect();
        let serial = {
            crate::par::set_threads(Some(1));
            let y = a.mul_right(&x);
            crate::par::set_threads(None);
            y
        };
        for t in [2, 3, 4] {
            crate::par::set_threads(Some(t));
            let y = a.mul_right(&x);
            crate::par::set_threads(None);
            assert!(
                serial
                    .iter()
                    .zip(&y)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count {t} changed bits"
            );
        }
    }
}
