//! Dense row-major matrix for small direct solves.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, LuFactors, Result};

/// A dense row-major matrix of `f64`.
///
/// Dense storage is reserved for the coarsest level of the multigrid
/// hierarchy and for reference computations in tests; production transition
/// matrices stay sparse.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::DenseMatrix;
///
/// let mut a = DenseMatrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 4.0;
/// assert_eq!(a.mul_right(&[1.0, 1.0]), vec![2.0, 4.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        DenseMatrix {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Overwrites every entry with `v` (e.g. re-zeroing a reused scratch
    /// matrix between coarse direct solves).
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_right(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "x length must equal column count");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Computes `y = x A` for a row vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn mul_left(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "x length must equal row count");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, &v) in self.row(r).iter().enumerate() {
                y[c] += xr * v;
            }
        }
        y
    }

    /// Dense matrix product `C = A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "{}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut c = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    c[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(c)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Factorizes the matrix as `P A = L U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if not square, or
    /// [`LinalgError::SingularMatrix`] if a pivot underflows.
    pub fn lu(&self) -> Result<LuFactors> {
        LuFactors::factorize(self)
    }

    /// Solves `A x = b` via LU factorization.
    ///
    /// Convenience wrapper for one-shot solves; factor once with
    /// [`lu`](Self::lu) when solving repeatedly.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors and shape mismatches.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Maximum absolute entry (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, " ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_mutate() {
        let mut a = DenseMatrix::zeros(2, 3);
        a[(1, 2)] = 7.0;
        assert_eq!(a[(1, 2)], 7.0);
        assert_eq!(a[(0, 0)], 0.0);
    }

    #[test]
    fn identity_matmul() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn mul_left_right_consistent_with_transpose() {
        let a = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, -1.0];
        assert_eq!(a.mul_left(&x), a.transpose().mul_right(&x));
    }

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(2, 2, &[3.0, 1.0, 1.0, 2.0]);
        let x = a.solve(&[9.0, 8.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_solve_errors() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            a.solve(&[1.0, 1.0]),
            Err(LinalgError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn debug_output_nonempty() {
        let a = DenseMatrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }
}
