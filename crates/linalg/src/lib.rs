//! Hand-rolled sparse and dense linear algebra for Markov-chain analysis.
//!
//! This crate is the numerical substrate of the `stochcdr` workspace, which
//! reproduces Demir & Feldmann, *Stochastic Modeling and Performance
//! Evaluation for Digital Clock and Data Recovery Circuits* (DATE 2000).
//! The paper's transition probability matrices reach millions of states, are
//! extremely sparse, and are consumed almost exclusively through
//! vector-times-matrix products (`x P`) and aggregation — so this crate
//! provides exactly those kernels, built from scratch:
//!
//! * [`CooMatrix`] — triplet builder with duplicate summing,
//! * [`CsrMatrix`] — compressed sparse row storage with `x·A`, `A·x`,
//!   transpose, row iteration, pruning and scaling,
//! * [`CscMatrix`] — compressed sparse column view for column-major access,
//! * [`DenseMatrix`] + [`LuFactors`] — dense direct solves for coarse grids,
//! * [`kron`] — Kronecker products/sums used by compositional FSM models,
//! * [`vecops`] — the handful of BLAS-1 kernels iterative solvers need,
//! * [`pattern`] — nonzero-pattern statistics and "spy" rendering
//!   (the paper's Figure 3),
//! * [`TransitionOp`] — the matrix-free operator interface every solver
//!   consumes, implemented by CSR/CSC/dense here and by structured
//!   backends downstream,
//! * [`par`] — a zero-dependency persistent worker pool whose kernels
//!   are bit-identical for every thread count, with cache-aware
//!   nnz-balanced row blocking ([`RowPartition`]).
//!
//! # Example
//!
//! ```
//! use stochcdr_linalg::{CooMatrix, CsrMatrix};
//!
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, 0.5);
//! coo.push(0, 1, 0.5);
//! coo.push(1, 0, 1.0);
//! let a: CsrMatrix = coo.to_csr();
//! let y = a.mul_left(&[1.0, 0.0]); // row-vector times matrix
//! assert_eq!(y, vec![0.5, 0.5]);
//! ```

#![deny(missing_docs)]
// `unsafe` is denied crate-wide and allowed back in exactly one place:
// `par`'s persistent pool, whose disjoint-chunk reconstruction and
// task-lending protocol are documented at each `unsafe` block.
#![deny(unsafe_code)]

mod coo;
mod csc;
mod csr;
mod dense;
mod error;
pub mod gmres;
pub mod kron;
mod lu;
mod op;
pub mod par;
pub mod pattern;
mod permute;
pub mod vecops;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::{LinalgError, Result};
pub use gmres::{gmres, GmresOptions, GmresResult};
pub use lu::LuFactors;
pub use op::TransitionOp;
pub use par::RowPartition;
pub use permute::Permutation;
