//! Compressed sparse column matrix.

use crate::CsrMatrix;

/// An immutable sparse matrix in compressed sparse column (CSC) format.
///
/// Internally a CSC matrix is the CSR storage of its transpose, so
/// construction is a single transpose pass. CSC is used where column-major
/// access dominates: Gauss–Seidel sweeps on `P^T` and incoming-probability
/// queries (`which states feed state j?`).
///
/// # Example
///
/// ```
/// use stochcdr_linalg::{CooMatrix, CscMatrix};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 2.0);
/// coo.push(1, 1, 3.0);
/// let csc: CscMatrix = coo.to_csr().to_csc();
/// let col: Vec<_> = csc.col(1).collect();
/// assert_eq!(col, vec![(0, 2.0), (1, 3.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    /// CSR storage of the transpose: row r of `t` is column r of `self`.
    t: CsrMatrix,
}

impl CscMatrix {
    /// Wraps an already-transposed CSR matrix.
    pub(crate) fn from_transposed_csr(t: CsrMatrix) -> Self {
        CscMatrix { t }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.t.cols()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.t.rows()
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.t.nnz()
    }

    /// Returns the value at `(row, col)`, or `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.t.get(col, row)
    }

    /// Borrows the underlying CSR storage of the transpose (row r of the
    /// returned matrix is column r of `self`).
    pub fn transposed_csr(&self) -> &CsrMatrix {
        &self.t
    }

    /// Iterates over the stored `(row, value)` pairs of one column, in row
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols`.
    pub fn col(&self, col: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.t.row(col)
    }

    /// Number of stored entries in one column.
    pub fn col_nnz(&self, col: usize) -> usize {
        self.t.row_nnz(col)
    }

    /// Computes `y = A x` (column-major accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_right(&self, x: &[f64]) -> Vec<f64> {
        // (A x) = (x^T A^T)^T, and `t` stores A^T in CSR.
        self.t.mul_left(x)
    }

    /// Computes `y = x A` for a row vector `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn mul_left(&self, x: &[f64]) -> Vec<f64> {
        self.t.mul_right(x)
    }

    /// Converts back to CSR format.
    pub fn to_csr(&self) -> CsrMatrix {
        self.t.transpose()
    }
}

impl From<CsrMatrix> for CscMatrix {
    fn from(csr: CsrMatrix) -> Self {
        csr.to_csc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        coo.push(1, 2, 4.0);
        coo.to_csr()
    }

    #[test]
    fn dims_and_nnz() {
        let csc = sample_csr().to_csc();
        assert_eq!(csc.rows(), 2);
        assert_eq!(csc.cols(), 3);
        assert_eq!(csc.nnz(), 4);
    }

    #[test]
    fn get_matches_csr() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(csc.get(r, c), csr.get(r, c));
            }
        }
    }

    #[test]
    fn col_iteration() {
        let csc = sample_csr().to_csc();
        let col2: Vec<_> = csc.col(2).collect();
        assert_eq!(col2, vec![(0, 2.0), (1, 4.0)]);
        assert_eq!(csc.col_nnz(1), 1);
    }

    #[test]
    fn products_match_csr() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        assert_eq!(
            csc.mul_right(&[1.0, 2.0, 3.0]),
            csr.mul_right(&[1.0, 2.0, 3.0])
        );
        assert_eq!(csc.mul_left(&[1.0, 2.0]), csr.mul_left(&[1.0, 2.0]));
    }

    #[test]
    fn round_trip() {
        let csr = sample_csr();
        assert_eq!(csr.to_csc().to_csr(), csr);
    }
}
