//! Error type shared by all linear-algebra operations in this crate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Error raised by matrix construction, conversion, or factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// An index exceeded the declared matrix dimensions.
    ///
    /// Carries `(row, col, rows, cols)`.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// Two operands had incompatible shapes.
    ///
    /// Carries a human-readable description of the mismatch.
    ShapeMismatch(String),
    /// A pivot smaller than the given tolerance was encountered during
    /// factorization; the matrix is singular to working precision.
    SingularMatrix {
        /// Elimination step at which the zero pivot appeared.
        step: usize,
        /// Magnitude of the offending pivot.
        pivot: f64,
    },
    /// A value that must be finite was NaN or infinite.
    NonFiniteValue {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// The offending value.
        value: f64,
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LinalgError::SingularMatrix { step, pivot } => write!(
                f,
                "singular matrix: pivot {pivot:e} at elimination step {step}"
            ),
            LinalgError::NonFiniteValue { row, col, value } => {
                write!(f, "non-finite value {value} at ({row}, {col})")
            }
            LinalgError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::IndexOutOfBounds {
            row: 5,
            col: 2,
            rows: 3,
            cols: 3,
        };
        assert!(e.to_string().contains("(5, 2)"));
        let e = LinalgError::SingularMatrix {
            step: 1,
            pivot: 0.0,
        };
        assert!(e.to_string().contains("singular"));
        let e = LinalgError::ShapeMismatch("2x2 vs 3x3".into());
        assert!(e.to_string().contains("2x2 vs 3x3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
