//! Nonzero-pattern statistics and "spy" rendering.
//!
//! The paper's Figure 3 shows the nonzero pattern of the CDR transition
//! probability matrix, "where one can observe the compositional structure of
//! the problem". This module reproduces that figure as terminal-friendly
//! ASCII art and as a portable graymap (PGM) image, and computes the pattern
//! statistics (bandwidth, density, block profile) that quantify the
//! structure.

use crate::CsrMatrix;

/// Summary statistics of a sparse matrix's nonzero pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// Matrix dimensions.
    pub rows: usize,
    /// Matrix dimensions.
    pub cols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// Fraction of entries stored: `nnz / (rows * cols)`.
    pub density: f64,
    /// Maximum of `col - row` over stored entries (upper bandwidth).
    pub upper_bandwidth: usize,
    /// Maximum of `row - col` over stored entries (lower bandwidth).
    pub lower_bandwidth: usize,
    /// Average stored entries per row.
    pub avg_row_nnz: f64,
    /// Maximum stored entries in any row.
    pub max_row_nnz: usize,
    /// Minimum stored entries in any row.
    pub min_row_nnz: usize,
}

/// Computes [`PatternStats`] for a matrix.
pub fn stats(a: &CsrMatrix) -> PatternStats {
    let mut upper = 0usize;
    let mut lower = 0usize;
    let mut max_row = 0usize;
    let mut min_row = usize::MAX;
    for r in 0..a.rows() {
        let nnz_r = a.row_nnz(r);
        max_row = max_row.max(nnz_r);
        min_row = min_row.min(nnz_r);
        for (c, _) in a.row(r) {
            if c >= r {
                upper = upper.max(c - r);
            } else {
                lower = lower.max(r - c);
            }
        }
    }
    if a.rows() == 0 {
        min_row = 0;
    }
    let cells = (a.rows() * a.cols()).max(1);
    PatternStats {
        rows: a.rows(),
        cols: a.cols(),
        nnz: a.nnz(),
        density: a.nnz() as f64 / cells as f64,
        upper_bandwidth: upper,
        lower_bandwidth: lower,
        avg_row_nnz: a.nnz() as f64 / a.rows().max(1) as f64,
        max_row_nnz: max_row,
        min_row_nnz: min_row,
    }
}

/// Renders the nonzero pattern as ASCII art, downsampled to at most
/// `max_size x max_size` character cells.
///
/// Each character cell covers a rectangle of matrix entries; the glyph
/// encodes the fill ratio of the cell: `' '` empty, `'.'` sparse, `':'`
/// moderate, `'#'` dense. This is the terminal equivalent of the paper's
/// Figure 3 spy plot.
///
/// # Panics
///
/// Panics if `max_size == 0`.
pub fn spy_ascii(a: &CsrMatrix, max_size: usize) -> String {
    assert!(max_size > 0, "max_size must be positive");
    let grid = fill_grid(a, max_size);
    let (h, w) = (grid.len(), grid.first().map_or(0, Vec::len));
    let mut out = String::with_capacity((w + 3) * (h + 2));
    out.push('+');
    out.extend(std::iter::repeat_n('-', w));
    out.push_str("+\n");
    for row in &grid {
        out.push('|');
        for &fill in row {
            out.push(match fill {
                0.0 => ' ',
                f if f < 0.25 => '.',
                f if f < 0.6 => ':',
                _ => '#',
            });
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', w));
    out.push('+');
    out
}

/// Renders the nonzero pattern as a binary PGM (P5) image, downsampled to at
/// most `max_size x max_size` pixels. Darker pixels = denser cells.
///
/// # Panics
///
/// Panics if `max_size == 0`.
pub fn spy_pgm(a: &CsrMatrix, max_size: usize) -> Vec<u8> {
    assert!(max_size > 0, "max_size must be positive");
    let grid = fill_grid(a, max_size);
    let (h, w) = (grid.len(), grid.first().map_or(0, Vec::len));
    let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
    for row in &grid {
        for &fill in row {
            // Emphasize sparse cells: even a single entry should be visible.
            let shade = if fill == 0.0 {
                255u8
            } else {
                (200.0 * (1.0 - fill.sqrt())) as u8
            };
            out.push(shade);
        }
    }
    out
}

/// Downsamples the pattern to a grid of fill ratios in `[0, 1]`.
fn fill_grid(a: &CsrMatrix, max_size: usize) -> Vec<Vec<f64>> {
    let h = a.rows().min(max_size).max(1);
    let w = a.cols().min(max_size).max(1);
    if a.rows() == 0 || a.cols() == 0 {
        return vec![vec![0.0; w]; h];
    }
    let mut counts = vec![vec![0usize; w]; h];
    for (r, c, _) in a.iter() {
        let gr = r * h / a.rows();
        let gc = c * w / a.cols();
        counts[gr][gc] += 1;
    }
    // Cell capacity: number of matrix entries mapping to a grid cell.
    let cell_rows = a.rows().div_ceil(h);
    let cell_cols = a.cols().div_ceil(w);
    let cap = (cell_rows * cell_cols).max(1) as f64;
    counts
        .into_iter()
        .map(|row| row.into_iter().map(|c| (c as f64 / cap).min(1.0)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn tridiag(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 1.0);
            if i + 1 < n {
                coo.push(i, i + 1, 1.0);
                coo.push(i + 1, i, 1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn stats_of_tridiagonal() {
        let s = stats(&tridiag(10));
        assert_eq!(s.nnz, 28);
        assert_eq!(s.upper_bandwidth, 1);
        assert_eq!(s.lower_bandwidth, 1);
        assert_eq!(s.max_row_nnz, 3);
        assert_eq!(s.min_row_nnz, 2);
        assert!((s.density - 28.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let s = stats(&CsrMatrix::zeros(5, 5));
        assert_eq!(s.nnz, 0);
        assert_eq!(s.min_row_nnz, 0);
        assert_eq!(s.upper_bandwidth, 0);
    }

    #[test]
    fn ascii_spy_shows_diagonal() {
        let art = spy_ascii(&tridiag(8), 8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10); // 8 rows + 2 border lines
                                     // Diagonal cells must be non-blank.
        for (i, line) in lines[1..9].iter().enumerate() {
            let cell = line.as_bytes()[1 + i] as char;
            assert_ne!(cell, ' ', "diagonal cell {i} should be filled:\n{art}");
        }
    }

    #[test]
    fn ascii_spy_downsamples() {
        let art = spy_ascii(&tridiag(100), 10);
        assert_eq!(art.lines().count(), 12);
    }

    #[test]
    fn pgm_has_header_and_payload() {
        let img = spy_pgm(&tridiag(16), 16);
        assert!(img.starts_with(b"P5\n16 16\n255\n"));
        assert_eq!(img.len(), b"P5\n16 16\n255\n".len() + 256);
    }

    #[test]
    fn empty_matrix_renders() {
        let art = spy_ascii(&CsrMatrix::zeros(4, 4), 4);
        assert!(art.contains(' '));
        assert!(!art.contains('#'));
    }
}
