//! Matrix-free transition-operator abstraction.
//!
//! [`TransitionOp`] is the single interface every stationary solver,
//! passage solve, and multigrid smoother consumes. A backend only has to
//! expose dimension/nnz metadata, row access, and the two matrix–vector
//! products `x·A` (distribution step) and `A·x`; it never has to
//! materialize its entries. The concrete storage formats in this crate
//! ([`CsrMatrix`], [`DenseMatrix`], [`CscMatrix`]) implement it here;
//! downstream crates add structured backends (the stochastic wrapper in
//! `stochcdr-markov`, the Kronecker product-form operator in
//! `stochcdr-fsm`).
//!
//! # Accumulation-order contract
//!
//! For a given backend, each output element of `mul_left_into` /
//! `mul_right_into` is accumulated in ascending source-index order, and
//! the parallel kernels preserve that element-local order — so results
//! are bit-identical for every thread count. Different backends may
//! associate differently (the Kronecker operator applies mode by mode)
//! and agree only to rounding.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;

/// A linear operator with transition-matrix semantics: rows index source
/// states, columns index destination states.
///
/// `Sync` is a supertrait so operators can be shared with the persistent
/// worker pool in [`crate::par`], whose borrowed dispatches complete
/// before the dispatching call returns.
pub trait TransitionOp: Sync {
    /// Number of rows (source states).
    fn rows(&self) -> usize;

    /// Number of columns (destination states).
    fn cols(&self) -> usize;

    /// Number of stored entries in the backend's *compact* representation
    /// (for structured operators this can be far smaller than the nnz of
    /// the materialized matrix). `0` when unknown.
    fn nnz(&self) -> usize;

    /// Number of scalar multiply-adds one operator application performs —
    /// the honest unit for deterministic work accounting (multigrid
    /// cycle-equivalents). Defaults to [`nnz`](Self::nnz), which is exact
    /// for materialized backends; structured operators whose compact
    /// storage understates the apply cost (Kronecker products apply each
    /// factor across every fiber) must override this with the real
    /// figure.
    fn apply_cost(&self) -> usize {
        self.nnz()
    }

    /// Computes `y = x·A` (row-vector product; propagates a distribution
    /// one step).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    fn mul_left_into(&self, x: &[f64], y: &mut [f64]);

    /// Computes `y = A·x` (column-vector product).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    fn mul_right_into(&self, x: &[f64], y: &mut [f64]);

    /// Visits the stored `(col, value)` pairs of one row in ascending
    /// column order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64));

    /// Allocating wrapper around [`TransitionOp::mul_left_into`].
    fn mul_left(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols()];
        self.mul_left_into(x, &mut y);
        y
    }

    /// Allocating wrapper around [`TransitionOp::mul_right_into`].
    fn mul_right(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows()];
        self.mul_right_into(x, &mut y);
        y
    }

    /// Returns the main diagonal as a dense vector.
    ///
    /// The default allocates and delegates to
    /// [`TransitionOp::diagonal_into`].
    fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows().min(self.cols())];
        self.diagonal_into(&mut d);
        d
    }

    /// Writes the main diagonal into a caller-provided buffer.
    ///
    /// Same values as [`TransitionOp::diagonal`]; smoother setups hoist
    /// the buffer out of their sweep loops. The default probes each row
    /// via [`TransitionOp::for_each_in_row`] (O(nnz) total); backends with
    /// cheaper access override it.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != min(rows, cols)`.
    fn diagonal_into(&self, out: &mut [f64]) {
        let n = self.rows().min(self.cols());
        assert_eq!(out.len(), n, "diagonal buffer length must match");
        for (r, dr) in out.iter_mut().enumerate() {
            *dr = 0.0;
            self.for_each_in_row(r, &mut |c, v| {
                if c == r {
                    *dr = v;
                }
            });
        }
    }

    /// Returns the transpose as a CSR matrix if the backend keeps one
    /// cached (column-access solvers like Gauss–Seidel use it to avoid a
    /// materialize-and-transpose pass). `None` by default.
    fn transpose_csr(&self) -> Option<&CsrMatrix> {
        None
    }

    /// Returns the transpose as a [`TransitionOp`] if the backend can
    /// serve one without materializing.
    ///
    /// The default forwards the cached CSR transpose from
    /// [`TransitionOp::transpose_csr`]; structured backends (e.g. the
    /// Kronecker product-form operator) override it with a compact
    /// transposed operator so transpose-driven solvers stay implicit.
    fn transpose_op(&self) -> Option<&dyn TransitionOp> {
        self.transpose_csr().map(|m| m as &dyn TransitionOp)
    }

    /// Materializes the operator as a CSR matrix via row traversal.
    ///
    /// Structured backends pay O(materialized nnz) here — solvers that
    /// need it (direct elimination, transpose sweeps on backends without
    /// a cached transpose) document the cost.
    fn materialize_csr(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows(), self.cols(), self.nnz());
        for r in 0..self.rows() {
            self.for_each_in_row(r, &mut |c, v| coo.push(r, c, v));
        }
        coo.to_csr()
    }

    /// Materializes the operator as a dense matrix via row traversal.
    fn materialize_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows(), self.cols());
        for r in 0..self.rows() {
            let row = d.row_mut(r);
            self.for_each_in_row(r, &mut |c, v| row[c] = v);
        }
        d
    }
}

impl TransitionOp for CsrMatrix {
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::mul_left_into(self, x, y);
    }

    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::mul_right_into(self, x, y);
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        for (c, v) in CsrMatrix::row(self, row) {
            f(c, v);
        }
    }

    fn diagonal(&self) -> Vec<f64> {
        CsrMatrix::diagonal(self)
    }

    fn diagonal_into(&self, out: &mut [f64]) {
        CsrMatrix::diagonal_into(self, out);
    }

    fn materialize_csr(&self) -> CsrMatrix {
        self.clone()
    }

    fn materialize_dense(&self) -> DenseMatrix {
        CsrMatrix::to_dense(self)
    }
}

impl TransitionOp for DenseMatrix {
    fn rows(&self) -> usize {
        DenseMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DenseMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        DenseMatrix::rows(self) * DenseMatrix::cols(self)
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            y.len(),
            DenseMatrix::cols(self),
            "y length must equal column count"
        );
        y.copy_from_slice(&DenseMatrix::mul_left(self, x));
    }

    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            y.len(),
            DenseMatrix::rows(self),
            "y length must equal row count"
        );
        y.copy_from_slice(&DenseMatrix::mul_right(self, x));
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        for (c, &v) in DenseMatrix::row(self, row).iter().enumerate() {
            if v != 0.0 {
                f(c, v);
            }
        }
    }

    fn diagonal(&self) -> Vec<f64> {
        let n = DenseMatrix::rows(self).min(DenseMatrix::cols(self));
        (0..n).map(|i| self[(i, i)]).collect()
    }

    fn materialize_dense(&self) -> DenseMatrix {
        self.clone()
    }
}

impl TransitionOp for CscMatrix {
    fn rows(&self) -> usize {
        CscMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        CscMatrix::cols(self)
    }

    fn nnz(&self) -> usize {
        CscMatrix::nnz(self)
    }

    fn mul_left_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            y.len(),
            CscMatrix::cols(self),
            "y length must equal column count"
        );
        y.copy_from_slice(&CscMatrix::mul_left(self, x));
    }

    fn mul_right_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            y.len(),
            CscMatrix::rows(self),
            "y length must equal row count"
        );
        y.copy_from_slice(&CscMatrix::mul_right(self, x));
    }

    fn for_each_in_row(&self, row: usize, f: &mut dyn FnMut(usize, f64)) {
        // Column-major storage: row access probes each column (O(cols·log)
        // per row). CSC is chosen for column-access patterns; row-driven
        // solvers should materialize or use the CSR backend.
        assert!(row < CscMatrix::rows(self), "row out of bounds");
        for c in 0..CscMatrix::cols(self) {
            let v = CscMatrix::get(self, row, c);
            if v != 0.0 {
                f(c, v);
            }
        }
    }

    fn transpose_csr(&self) -> Option<&CsrMatrix> {
        Some(self.transposed_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 0.5);
        coo.push(0, 1, 0.5);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 0.25);
        coo.push(2, 2, 0.75);
        coo.to_csr()
    }

    fn assert_backends_agree(op: &dyn TransitionOp, reference: &CsrMatrix) {
        let x = vec![0.2, 0.3, 0.5];
        assert_eq!(op.mul_left(&x), TransitionOp::mul_left(reference, &x));
        assert_eq!(op.mul_right(&x), TransitionOp::mul_right(reference, &x));
        assert_eq!(op.diagonal(), CsrMatrix::diagonal(reference));
        assert_eq!(op.materialize_csr(), reference.clone());
    }

    #[test]
    fn csr_dense_csc_backends_agree() {
        let p = sample_csr();
        assert_backends_agree(&p, &p);
        assert_backends_agree(&p.to_dense(), &p);
        assert_backends_agree(&p.to_csc(), &p);
    }

    #[test]
    fn row_traversal_is_sorted_and_complete() {
        let p = sample_csr();
        for r in 0..3 {
            let mut cols = Vec::new();
            TransitionOp::for_each_in_row(&p, r, &mut |c, _| cols.push(c));
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            assert_eq!(cols, sorted);
        }
    }

    #[test]
    fn csc_exposes_cached_transpose() {
        let p = sample_csr();
        let csc = p.to_csc();
        let t = TransitionOp::transpose_csr(&csc).expect("csc caches its transpose");
        assert_eq!(*t, p.transpose());
    }

    #[test]
    fn transpose_op_default_forwards_the_csr_transpose() {
        let p = sample_csr();
        let csc = p.to_csc();
        let t = TransitionOp::transpose_op(&csc).expect("csc serves a transpose op");
        let x = vec![0.1, 0.4, 0.5];
        assert_eq!(t.mul_right(&x), p.transpose().mul_right(&x));
        // Backends without a cached transpose default to None.
        assert!(TransitionOp::transpose_op(&p).is_none());
    }

    #[test]
    fn diagonal_into_matches_diagonal_for_every_backend() {
        let p = sample_csr();
        let backends: Vec<Box<dyn TransitionOp>> = vec![
            Box::new(p.clone()),
            Box::new(p.to_dense()),
            Box::new(p.to_csc()),
        ];
        for op in &backends {
            let mut d = vec![f64::NAN; 3];
            op.diagonal_into(&mut d);
            assert_eq!(d, op.diagonal());
            assert_eq!(d, CsrMatrix::diagonal(&p));
        }
    }

    #[test]
    fn materialize_dense_round_trips() {
        let p = sample_csr();
        assert_eq!(TransitionOp::materialize_dense(&p), p.to_dense());
    }
}
