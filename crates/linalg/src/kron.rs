//! Kronecker (tensor) products and sums of sparse matrices.
//!
//! The paper builds the transition probability matrix of the whole CDR loop
//! "using hierarchical Kronecker algebra-like techniques as a composition of
//! smaller components". These are the corresponding primitive operations:
//! for independent components with transition matrices `A` and `B`, the
//! joint chain has matrix `A ⊗ B`; for continuous-time superposition one
//! would use the Kronecker sum `A ⊕ B = A ⊗ I + I ⊗ B`.
//!
//! State `(i, j)` of the product maps to flat index `i * B.rows() + j`
//! (row-major, left factor varies slowest), matching
//! [`stochcdr_fsm`](https://docs.rs)’ state indexing convention.

use crate::{CooMatrix, CsrMatrix};

/// Computes the Kronecker product `A ⊗ B`.
///
/// The result has shape `(A.rows * B.rows) x (A.cols * B.cols)` and
/// `A.nnz * B.nnz` stored entries.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::{CooMatrix, kron};
///
/// // A = [[0,1],[1,0]] (deterministic toggle), B = I2.
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 1, 1.0);
/// a.push(1, 0, 1.0);
/// let a = a.to_csr();
/// let b = stochcdr_linalg::CsrMatrix::identity(2);
/// let k = kron::kron(&a, &b);
/// assert_eq!(k.rows(), 4);
/// assert_eq!(k.get(0, 2), 1.0); // (0,0) -> (1,0)
/// ```
pub fn kron(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let rows = a.rows() * b.rows();
    let cols = a.cols() * b.cols();
    let mut coo = CooMatrix::with_capacity(rows, cols, a.nnz() * b.nnz());
    for (ar, ac, av) in a.iter() {
        for (br, bc, bv) in b.iter() {
            coo.push(ar * b.rows() + br, ac * b.cols() + bc, av * bv);
        }
    }
    coo.to_csr()
}

/// Computes the Kronecker sum `A ⊕ B = A ⊗ I + I ⊗ B` of square matrices.
///
/// # Panics
///
/// Panics if either matrix is not square.
pub fn kron_sum(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), a.cols(), "kron_sum requires square A");
    assert_eq!(b.rows(), b.cols(), "kron_sum requires square B");
    let left = kron(a, &CsrMatrix::identity(b.rows()));
    let right = kron(&CsrMatrix::identity(a.rows()), b);
    left.add_scaled(1.0, &right)
        .expect("shapes match by construction")
}

/// Computes the Kronecker product of a sequence of factors, left to right.
///
/// An empty sequence yields the `1 x 1` identity (the unit of `⊗`).
pub fn kron_all<'a, I>(factors: I) -> CsrMatrix
where
    I: IntoIterator<Item = &'a CsrMatrix>,
{
    let mut acc = CsrMatrix::identity(1);
    for f in factors {
        acc = kron(&acc, f);
    }
    acc
}

/// Maps a pair of component state indices to the flat product index used by
/// [`kron`].
#[inline]
pub fn pair_index(i: usize, j: usize, b_dim: usize) -> usize {
    i * b_dim + j
}

/// Inverse of [`pair_index`]: splits a flat product index into `(i, j)`.
#[inline]
pub fn split_index(flat: usize, b_dim: usize) -> (usize, usize) {
    (flat / b_dim, flat % b_dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for &(r, c, v) in entries {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    #[test]
    fn kron_matches_definition() {
        let a = mat(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0)]);
        let b = mat(2, 2, &[(0, 1, 5.0), (1, 1, 7.0)]);
        let k = kron(&a, &b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        assert_eq!(k.nnz(), a.nnz() * b.nnz());
        for (ar, ac, av) in a.iter() {
            for (br, bc, bv) in b.iter() {
                assert_eq!(k.get(2 * ar + br, 2 * ac + bc), av * bv);
            }
        }
    }

    #[test]
    fn kron_with_identity_is_block_diagonal() {
        let a = CsrMatrix::identity(3);
        let b = mat(2, 2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 0, 1.0)]);
        let k = kron(&a, &b);
        // Block diagonal: entries only where row block == col block.
        for (r, c, _) in k.iter() {
            assert_eq!(r / 2, c / 2);
        }
    }

    #[test]
    fn kron_of_stochastic_is_stochastic() {
        let a = mat(2, 2, &[(0, 0, 0.3), (0, 1, 0.7), (1, 0, 1.0)]);
        let b = mat(2, 2, &[(0, 0, 0.5), (0, 1, 0.5), (1, 1, 1.0)]);
        let k = kron(&a, &b);
        for s in k.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn kron_sum_definition() {
        let a = mat(2, 2, &[(0, 1, 1.0)]);
        let b = mat(2, 2, &[(1, 0, 2.0)]);
        let s = kron_sum(&a, &b);
        // A ⊗ I contributes (0,1)->(2? ...): entry ((0,j),(1,j)) = 1.
        assert_eq!(s.get(0, 2), 1.0);
        assert_eq!(s.get(1, 3), 1.0);
        // I ⊗ B contributes ((i,1),(i,0)) = 2.
        assert_eq!(s.get(1, 0), 2.0);
        assert_eq!(s.get(3, 2), 2.0);
    }

    #[test]
    fn kron_all_unit_and_chain() {
        let e: Vec<&CsrMatrix> = vec![];
        let u = kron_all(e);
        assert_eq!(u.rows(), 1);
        assert_eq!(u.get(0, 0), 1.0);

        let a = CsrMatrix::identity(2);
        let b = CsrMatrix::identity(3);
        let c = CsrMatrix::identity(5);
        let k = kron_all([&a, &b, &c]);
        assert_eq!(k.rows(), 30);
        assert_eq!(k.nnz(), 30);
    }

    #[test]
    fn index_round_trip() {
        for i in 0..4 {
            for j in 0..7 {
                let f = pair_index(i, j, 7);
                assert_eq!(split_index(f, 7), (i, j));
            }
        }
    }

    #[test]
    fn kron_associativity() {
        let a = mat(2, 2, &[(0, 1, 1.0), (1, 0, 0.5)]);
        let b = mat(2, 2, &[(0, 0, 2.0)]);
        let c = mat(2, 2, &[(1, 1, 3.0)]);
        let left = kron(&kron(&a, &b), &c);
        let right = kron(&a, &kron(&b, &c));
        assert_eq!(left, right);
    }
}
