//! Permutations of vectors and square sparse matrices.

use crate::{CooMatrix, CsrMatrix, LinalgError, Result};

/// A permutation of `0..n`.
///
/// Used to reorder chain states (e.g. grouping phase-error bins together so
/// the transition matrix shows the banded block structure of the paper's
/// Figure 3).
///
/// The convention is *destination-oriented*: `perm[new] = old`, i.e. applying
/// the permutation to a vector `x` yields `y[new] = x[perm[new]]`.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::Permutation;
///
/// let p = Permutation::new(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.apply(&[10.0, 20.0, 30.0]), vec![30.0, 10.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl Permutation {
    /// Builds a permutation from `perm[new] = old`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidPermutation`] if the vector is not a
    /// bijection on `0..len`.
    pub fn new(forward: Vec<usize>) -> Result<Self> {
        let n = forward.len();
        let mut inverse = vec![usize::MAX; n];
        for (new, &old) in forward.iter().enumerate() {
            if old >= n {
                return Err(LinalgError::InvalidPermutation(format!(
                    "index {old} out of range 0..{n}"
                )));
            }
            if inverse[old] != usize::MAX {
                return Err(LinalgError::InvalidPermutation(format!(
                    "index {old} appears more than once"
                )));
            }
            inverse[old] = new;
        }
        Ok(Permutation { forward, inverse })
    }

    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let forward: Vec<usize> = (0..n).collect();
        Permutation {
            inverse: forward.clone(),
            forward,
        }
    }

    /// Builds the permutation that sorts indices by the given key function.
    ///
    /// Stable: equal keys keep their original relative order.
    pub fn from_sort_key<K: Ord>(n: usize, key: impl Fn(usize) -> K) -> Self {
        let mut forward: Vec<usize> = (0..n).collect();
        forward.sort_by_key(|&i| key(i));
        Self::new(forward).expect("sorting a range yields a bijection")
    }

    /// Length of the permuted domain.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Returns `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The old index placed at position `new`.
    pub fn old_index(&self, new: usize) -> usize {
        self.forward[new]
    }

    /// The new position of old index `old`.
    pub fn new_index(&self, old: usize) -> usize {
        self.inverse[old]
    }

    /// Applies the permutation to a vector: `y[new] = x[perm[new]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != len()`.
    pub fn apply<T: Clone>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len(), "vector length must match permutation");
        self.forward.iter().map(|&old| x[old].clone()).collect()
    }

    /// Applies the inverse permutation to a vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != len()`.
    pub fn apply_inverse<T: Clone>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.len(), "vector length must match permutation");
        self.inverse.iter().map(|&pos| x[pos].clone()).collect()
    }

    /// Returns the inverse permutation as a new object.
    pub fn inverted(&self) -> Permutation {
        Permutation {
            forward: self.inverse.clone(),
            inverse: self.forward.clone(),
        }
    }

    /// Symmetrically permutes a square matrix: `B[new_i, new_j] = A[old_i, old_j]`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square of matching dimension.
    pub fn permute_matrix(&self, a: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            a.rows(),
            a.cols(),
            "symmetric permutation requires a square matrix"
        );
        assert_eq!(
            a.rows(),
            self.len(),
            "matrix dimension must match permutation"
        );
        let mut coo = CooMatrix::with_capacity(a.rows(), a.cols(), a.nnz());
        for (r, c, v) in a.iter() {
            coo.push(self.inverse[r], self.inverse[c], v);
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(3);
        assert_eq!(p.apply(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn apply_and_inverse_round_trip() {
        let p = Permutation::new(vec![1, 2, 0]).unwrap();
        let x = [10, 20, 30];
        let y = p.apply(&x);
        assert_eq!(y, vec![20, 30, 10]);
        assert_eq!(p.apply_inverse(&y), x.to_vec());
    }

    #[test]
    fn invalid_permutations_rejected() {
        assert!(Permutation::new(vec![0, 0]).is_err());
        assert!(Permutation::new(vec![0, 5]).is_err());
    }

    #[test]
    fn from_sort_key_sorts() {
        let vals = [3, 1, 2];
        let p = Permutation::from_sort_key(3, |i| vals[i]);
        assert_eq!(p.apply(&vals), vec![1, 2, 3]);
    }

    #[test]
    fn permute_matrix_moves_entries() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 5.0);
        let a = coo.to_csr();
        let p = Permutation::new(vec![1, 0]).unwrap(); // swap
        let b = p.permute_matrix(&a);
        assert_eq!(b.get(1, 0), 5.0);
        assert_eq!(b.get(0, 1), 0.0);
    }

    #[test]
    fn permute_preserves_row_sums_multiset() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 0.5);
        coo.push(0, 1, 0.5);
        coo.push(1, 2, 1.0);
        coo.push(2, 0, 1.0);
        let a = coo.to_csr();
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        let b = p.permute_matrix(&a);
        let mut s1 = a.row_sums();
        let mut s2 = b.row_sums();
        s1.sort_by(f64::total_cmp);
        s2.sort_by(f64::total_cmp);
        assert_eq!(s1, s2);
    }

    #[test]
    fn inverted_composes_to_identity() {
        let p = Permutation::new(vec![2, 0, 1]).unwrap();
        let q = p.inverted();
        for i in 0..3 {
            // q undoes p: p places old index i at position p.new_index(i),
            // and q maps that position back to i.
            assert_eq!(q.new_index(p.new_index(i)), i);
            assert_eq!(p.old_index(p.new_index(i)), i);
        }
    }
}
