//! Dense LU factorization with partial pivoting.

use crate::{DenseMatrix, LinalgError, Result};

/// LU factors of a square dense matrix, `P A = L U`.
///
/// `L` is unit lower triangular and `U` upper triangular, packed into one
/// matrix; `P` is stored as a pivot permutation. Used for the direct solve at
/// the coarsest multigrid level and for reference solutions in tests.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
/// let lu = a.lu().unwrap(); // requires pivoting
/// let x = lu.solve(&[3.0, 5.0]).unwrap();
/// assert_eq!(x, vec![5.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed L (strictly lower, unit diagonal implicit) and U (upper).
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

/// Pivots smaller than this are treated as exact zeros.
const PIVOT_TOL: f64 = 1e-300;

impl LuFactors {
    /// Factorizes `a` with partial (row) pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `a` is not square, or
    /// [`LinalgError::SingularMatrix`] when no usable pivot exists.
    pub fn factorize(a: &DenseMatrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::ShapeMismatch(format!(
                "LU requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivoting: largest magnitude in column k at/below row k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax < PIVOT_TOL {
                return Err(LinalgError::SingularMatrix {
                    step: k,
                    pivot: pmax,
                });
            }
            if p != k {
                perm.swap(p, k);
                sign = -sign;
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    let ukc = lu[(k, c)];
                    lu[(i, c)] -= m * ukc;
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != dim()`.
    #[allow(clippy::needless_range_loop)] // triangular solves read clearest indexed
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "rhs length {} != dimension {n}",
                b.len()
            )));
        }
        // Apply permutation, then forward and back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for k in 0..i {
                acc -= self.lu[(i, k)] * x[k];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for k in (i + 1)..n {
                acc -= self.lu[(i, k)] * x[k];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `x A = c` (equivalently `A^T x = c^T`).
    ///
    /// Needed for stationary-distribution solves, which are row-vector
    /// problems.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `c.len() != dim()`.
    #[allow(clippy::needless_range_loop)] // triangular solves read clearest indexed
    pub fn solve_transposed(&self, c: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if c.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "rhs length {} != dimension {n}",
                c.len()
            )));
        }
        // A^T = U^T L^T P, so solve U^T z = c, then L^T w = z, then x = P^T w.
        let mut z = c.to_vec();
        for i in 0..n {
            let mut acc = z[i];
            for k in 0..i {
                acc -= self.lu[(k, i)] * z[k];
            }
            z[i] = acc / self.lu[(i, i)];
        }
        for i in (0..n).rev() {
            let mut acc = z[i];
            for k in (i + 1)..n {
                acc -= self.lu[(k, i)] * z[k];
            }
            z[i] = acc;
        }
        let mut x = vec![0.0; n];
        for (pos, &orig) in self.perm.iter().enumerate() {
            x[orig] = z[pos];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wilkinson() -> DenseMatrix {
        DenseMatrix::from_rows(3, 3, &[1e-10, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 2.0])
    }

    #[test]
    fn solve_matches_manual() {
        let a = DenseMatrix::from_rows(3, 3, &[2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0]);
        let x = a.solve(&[4.0, 5.0, 6.0]).unwrap();
        let back = a.mul_right(&x);
        for (bi, ei) in back.iter().zip([4.0, 5.0, 6.0]) {
            assert!((bi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoting_keeps_accuracy() {
        let a = wilkinson();
        let b = [1.0, 2.0, 3.0];
        let x = a.solve(&b).unwrap();
        let back = a.mul_right(&x);
        for (bi, ei) in back.iter().zip(b) {
            assert!((bi - ei).abs() < 1e-8, "residual too large: {back:?}");
        }
    }

    #[test]
    fn solve_transposed_matches_explicit_transpose() {
        let a = DenseMatrix::from_rows(3, 3, &[2.0, 1.0, 0.5, 1.0, 3.0, 2.0, 1.0, 0.0, 4.0]);
        let c = [1.0, -2.0, 0.5];
        let lu = a.lu().unwrap();
        let x = lu.solve_transposed(&c).unwrap();
        let xt = a.transpose().solve(&c).unwrap();
        for (xi, yi) in x.iter().zip(&xt) {
            assert!((xi - yi).abs() < 1e-10);
        }
        // And x A should reproduce c.
        let back = a.mul_left(&x);
        for (bi, ci) in back.iter().zip(c) {
            assert!((bi - ci).abs() < 1e-10);
        }
    }

    #[test]
    fn determinant() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert!((a.lu().unwrap().det() + 2.0).abs() < 1e-12);
        let i = DenseMatrix::identity(4);
        assert!((i.lu().unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = DenseMatrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }
}
