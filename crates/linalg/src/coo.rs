//! Coordinate-format (triplet) sparse matrix builder.

use crate::{CsrMatrix, LinalgError, Result};

/// A sparse matrix under construction, stored as `(row, col, value)` triplets.
///
/// `CooMatrix` is the mutable staging area used while assembling a transition
/// probability matrix; duplicates are allowed and are summed when converting
/// to [`CsrMatrix`]. This mirrors how probability mass accumulates when
/// several noise outcomes lead to the same successor state.
///
/// # Example
///
/// ```
/// use stochcdr_linalg::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 0.25);
/// coo.push(0, 1, 0.75); // duplicate: summed on conversion
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 1), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Creates an empty builder for a `rows x cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` exceeds `u32::MAX` (the index type used for
    /// compact triplet storage).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= u32::MAX as usize && cols <= u32::MAX as usize,
            "matrix dimensions exceed u32 index range"
        );
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with capacity for `nnz` triplets.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        let mut m = Self::new(rows, cols);
        m.entries.reserve(nnz);
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no triplet has been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a triplet.
    ///
    /// Entries with `value == 0.0` are silently dropped so that callers can
    /// push probability masses without filtering.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is out of bounds or `value` is not finite; both
    /// indicate a logic error in the model builder that must not be masked.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        assert!(
            value.is_finite(),
            "non-finite value {value} at ({row}, {col})"
        );
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
    }

    /// Fallible variant of [`push`](Self::push) for untrusted input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] or
    /// [`LinalgError::NonFiniteValue`] instead of panicking.
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        if !value.is_finite() {
            return Err(LinalgError::NonFiniteValue { row, col, value });
        }
        if value != 0.0 {
            self.entries.push((row as u32, col as u32, value));
        }
        Ok(())
    }

    /// Iterates over stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries
            .iter()
            .map(|&(r, c, v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR, summing duplicate entries and dropping entries whose
    /// sum cancels to exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row: O(nnz + rows), stable within a row by
        // insertion order; duplicates are merged after a per-row sort by col.
        let mut row_counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut next = row_counts.clone();
        let mut cols_buf = vec![0u32; self.entries.len()];
        let mut vals_buf = vec![0.0f64; self.entries.len()];
        for &(r, c, v) in &self.entries {
            let slot = next[r as usize];
            cols_buf[slot] = c;
            vals_buf[slot] = v;
            next[r as usize] += 1;
        }

        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut data: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for r in 0..self.rows {
            let (lo, hi) = (row_counts[r], row_counts[r + 1]);
            scratch.clear();
            scratch.extend(
                cols_buf[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals_buf[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == c {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(c);
                    data.push(sum);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, indptr, indices, data)
    }

    /// Clears all triplets, keeping the allocation and dimensions.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(3, 4);
        let csr = coo.to_csr();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 0.3);
        coo.push(1, 0, 0.2);
        coo.push(1, 1, 0.5);
        let csr = coo.to_csr();
        assert!((csr.get(1, 0) - 0.5).abs() < 1e-15);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, -1.0);
        coo.push(0, 1, 2.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn zero_values_are_ignored() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(1, 0, 1.0);
    }

    #[test]
    fn try_push_reports_errors() {
        let mut coo = CooMatrix::new(1, 1);
        assert!(matches!(
            coo.try_push(0, 5, 1.0),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            coo.try_push(0, 0, f64::NAN),
            Err(LinalgError::NonFiniteValue { .. })
        ));
        assert!(coo.try_push(0, 0, 1.0).is_ok());
    }

    #[test]
    fn rows_are_sorted_in_csr() {
        let mut coo = CooMatrix::new(1, 5);
        coo.push(0, 4, 4.0);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        let csr = coo.to_csr();
        let row: Vec<_> = csr.row(0).collect();
        assert_eq!(row, vec![(0, 1.0), (2, 2.0), (4, 4.0)]);
    }

    #[test]
    fn extend_works() {
        let mut coo = CooMatrix::new(2, 2);
        coo.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(coo.nnz(), 2);
    }
}
