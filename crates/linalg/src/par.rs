//! Deterministic persistent-pool parallel kernels.
//!
//! A zero-dependency worker layer built on a lazily spawned **persistent
//! worker pool**: helper threads are created once (on the first dispatch
//! that needs them) and then park on a condvar between jobs, so a kernel
//! dispatch costs a mutex round-trip and a wake — not a thread spawn and
//! a scoped-thread teardown. Every primitive here is designed around one
//! contract:
//!
//! > **Determinism contract.** The numerical result of a parallel kernel
//! > is bit-identical for every thread count, including one.
//!
//! Two mechanisms enforce it:
//!
//! 1. **Disjoint output partitioning** ([`for_each_chunk_mut`],
//!    [`for_each_chunk_aligned_mut`], [`for_each_partition_mut`]): the
//!    output slice is split into contiguous chunks and each output
//!    element is computed *wholly* by one worker, in the same
//!    element-local order as the serial loop. Chunk boundaries may depend
//!    on the thread count because no floating-point value ever crosses a
//!    boundary — except for [`for_each_partition_mut`], whose block
//!    boundaries come from a precomputed [`RowPartition`] and are a pure
//!    function of the operator's weight profile, never of the thread
//!    count (workers *steal* fixed blocks instead of re-cutting them).
//! 2. **Fixed-shape reductions** ([`map_chunks`], [`map_tasks`]): work is
//!    cut into chunks whose boundaries are a pure function of the problem
//!    size (never of the thread count), and per-chunk partial results are
//!    combined by the caller in ascending chunk order. Workers may steal
//!    chunks in any order; the combine order is still deterministic.
//!
//! Thread-count resolution (highest precedence first):
//! [`set_threads`] (the `--threads` CLI flag) → the `STOCHCDR_THREADS`
//! environment variable → [`std::thread::available_parallelism`].
//!
//! # Pool mechanics
//!
//! A single process-wide pool ([`run_pooled`]) owns `max(t) - 1` detached
//! helper threads, spawned lazily and reused for every subsequent
//! dispatch. A dispatch publishes a type-erased `Fn(usize)` task under
//! the pool mutex, bumps a job epoch, and wakes the helpers; each helper
//! claims a distinct worker index (`1..t`), runs its share, and parks
//! again. The calling thread always runs worker index `0`, so a
//! `t`-thread kernel uses the caller plus `t - 1` helpers. The caller
//! blocks until every helper has finished (a condvar join), which is what
//! makes lending the caller's stack-local closure to the pool sound.
//!
//! Dispatches are serialized by a `try_lock` on a dispatch mutex: if a
//! kernel is invoked while another dispatch is in flight (including from
//! inside a pool worker — nested parallelism), it simply runs its
//! workers' shares serially on the current thread, which by the
//! determinism contract produces the same bits.
//!
//! When `stochcdr-obs` instrumentation is enabled, every parallel kernel
//! invocation additionally profiles its workers: each worker runs under a
//! `par.worker` span on its own trace lane (attributed to the span that
//! launched the kernel), per-worker busy nanoseconds feed the
//! `par.worker.busy_ns` histogram, and the ratio of busy time to the
//! workers' busy window (earliest worker start → latest worker end; pool
//! wake/join excluded) is emitted as the `par.utilization` gauge.
//! All of it is timing-only — the numeric results remain bit-identical
//! whether instrumentation is on or off.

// The only module in the crate allowed to use `unsafe`: the pool lends a
// stack-local closure to persistent threads and reconstructs disjoint
// subslices from raw pointers. Each unsafe block documents the protocol
// that makes it sound.
#![allow(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, TryLockError};
use std::time::Instant;

use stochcdr_obs as obs;

/// Minimum number of output elements before a kernel goes parallel.
///
/// Below this size the dispatch overhead dominates; kernels fall back to
/// the serial path (which, per the determinism contract, produces the
/// same bits). With the persistent pool a dispatch costs a mutex
/// round-trip plus a condvar wake per helper (single-digit microseconds),
/// not the tens of microseconds per worker the old scoped spawn paid —
/// so the gate sits at 32k elements (~0.25 MB of traffic), half the old
/// spawn-era cutoff.
pub const PARALLEL_CUTOFF: usize = 32_768;

/// Minimum total *weight* (e.g. matrix nonzeros) before a weighted kernel
/// ([`for_each_weighted_chunk_mut`], [`for_each_partition_mut`]) goes
/// parallel.
///
/// Weighted kernels gate on the work actually performed rather than the
/// output length: a tall-skinny CSR operator concentrates its flops in
/// few rows, so nonzeros — not rows — predict the win. With pool
/// dispatch replacing per-call spawns the crossover halves to ~64k
/// nonzeros (~0.75 MB of matrix traffic).
pub const PARALLEL_NNZ_CUTOFF: usize = 65_536;

/// Target weight (nonzeros) per [`RowPartition`] block.
///
/// A block's matrix traffic is roughly `16 B × weight` (a `u32` index
/// plus an `f64` value, plus the touched `x`/`y` entries), so 32k
/// nonzeros keep a block's working set near 0.5 MB — comfortably inside
/// a per-core L2 slice — while leaving enough blocks per operator above
/// [`PARALLEL_NNZ_CUTOFF`] for the stealing loop to balance load.
pub const PARTITION_BLOCK_WEIGHT: usize = 32_768;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV: OnceLock<Option<usize>> = OnceLock::new();

/// Hardware parallelism as reported by the OS (≥ 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    *ENV.get_or_init(|| {
        std::env::var("STOCHCDR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Overrides the worker count for all subsequent parallel kernels.
///
/// `Some(n)` pins the count to `n` (the `--threads N` CLI flag lands
/// here); `None` clears the override, falling back to `STOCHCDR_THREADS`
/// and then to [`available`].
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Resolved worker count: override → `STOCHCDR_THREADS` → hardware.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    env_threads().unwrap_or_else(available)
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// Type-erased borrow of the dispatching kernel's task closure.
///
/// The raw pointer lets the `'static` worker loop call a stack-local
/// closure; soundness comes from the dispatch protocol — the caller
/// blocks until `remaining == 0` before the closure goes out of scope.
#[derive(Clone, Copy)]
struct Task(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the dispatch protocol guarantees it outlives every worker's use.
unsafe impl Send for Task {}

struct PoolState {
    /// Monotone job counter; a helper only claims work for an epoch it
    /// has not seen yet, so stale wakeups and extra helpers (from an
    /// earlier, wider dispatch) skip jobs that are already fully claimed.
    epoch: u64,
    task: Option<Task>,
    /// Next worker index to hand out; helpers claim `1..=helpers`
    /// (index 0 is the calling thread).
    next: usize,
    helpers: usize,
    /// Helpers that have not yet finished the current job.
    remaining: usize,
    panicked: bool,
    /// Helper threads spawned so far (lazily grown, never shrunk).
    spawned: usize,
}

struct Pool {
    m: Mutex<PoolState>,
    /// Signals helpers that a new job (epoch) is available.
    work: Condvar,
    /// Signals the dispatcher that `remaining` reached zero.
    done: Condvar,
}

static POOL: Pool = Pool {
    m: Mutex::new(PoolState {
        epoch: 0,
        task: None,
        next: 1,
        helpers: 0,
        remaining: 0,
        panicked: false,
        spawned: 0,
    }),
    work: Condvar::new(),
    done: Condvar::new(),
};

/// Serializes dispatches. Held for the whole job, so a nested kernel (or
/// a concurrent dispatch from another thread) fails the `try_lock` and
/// runs serially — same bits, no deadlock.
static DISPATCH: Mutex<()> = Mutex::new(());

thread_local! {
    /// Set once on every pool helper: a helper never dispatches to the
    /// pool itself (its nested kernels run serial shares inline).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Locks the pool state, surviving poisoning (a panicking worker must not
/// wedge every later dispatch — the `panicked` flag carries the report).
fn lock_pool() -> MutexGuard<'static, PoolState> {
    POOL.m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop() {
    IN_POOL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let mut st = lock_pool();
        let (task, w) = loop {
            if st.epoch != seen {
                if st.task.is_some() && st.next <= st.helpers {
                    let w = st.next;
                    st.next += 1;
                    break (st.task.expect("task present while claiming"), w);
                }
                // A job we have not run, but it is already fully claimed
                // (or cleared): mark it seen and go back to sleep.
                seen = st.epoch;
            }
            st = POOL.work.wait(st).unwrap_or_else(|e| e.into_inner());
        };
        seen = st.epoch;
        drop(st);
        // SAFETY: the dispatcher blocks until `remaining == 0`, so the
        // closure behind the pointer is alive for the whole call.
        let ok = catch_unwind(AssertUnwindSafe(|| (unsafe { &*task.0 })(w))).is_ok();
        let mut st = lock_pool();
        if !ok {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            POOL.done.notify_all();
        }
    }
}

/// Spawns detached helpers until `spawned >= helpers`. Called with the
/// pool lock held.
fn ensure_spawned(st: &mut PoolState, helpers: usize) {
    while st.spawned < helpers {
        std::thread::Builder::new()
            .name("stochcdr-par".into())
            .spawn(worker_loop)
            .expect("spawn pool worker");
        st.spawned += 1;
    }
}

/// Joins the in-flight job on drop: waits for every helper, clears the
/// task slot, and propagates a worker panic. Running in `Drop` makes the
/// join panic-safe — even if the caller's own share (worker 0) panics,
/// no helper is left running a closure that is about to go out of scope.
struct JobGuard;

impl Drop for JobGuard {
    fn drop(&mut self) {
        let mut st = lock_pool();
        while st.remaining > 0 {
            st = POOL.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.task = None;
        let panicked = std::mem::replace(&mut st.panicked, false);
        drop(st);
        if panicked && !std::thread::panicking() {
            panic!("parallel worker panicked");
        }
    }
}

/// Runs `task(w)` for every worker index `w in 0..t`, fanning helpers out
/// across the persistent pool when it is free.
///
/// Falls back to running all shares serially on the current thread when
/// `t <= 1`, when called from inside a pool helper, or when another
/// dispatch holds the pool — the shares are disjoint and element-local,
/// so the serial schedule produces identical bits.
fn run_pooled(t: usize, task: &(dyn Fn(usize) + Sync)) {
    let serial = |task: &(dyn Fn(usize) + Sync)| {
        for w in 0..t {
            task(w);
        }
    };
    if t <= 1 || IN_POOL.with(Cell::get) {
        serial(task);
        return;
    }
    let _dispatch = match DISPATCH.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => {
            serial(task);
            return;
        }
    };
    let helpers = t - 1;
    // SAFETY: the fake 'static lifetime never escapes this call — the
    // `JobGuard` below blocks until every helper has returned from the
    // closure before `task` can go out of scope in the caller.
    let task_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(task) };
    {
        let mut st = lock_pool();
        ensure_spawned(&mut st, helpers);
        st.epoch = st.epoch.wrapping_add(1);
        st.task = Some(Task(task_static as *const _));
        st.next = 1;
        st.helpers = helpers;
        st.remaining = helpers;
        st.panicked = false;
        POOL.work.notify_all();
    }
    let guard = JobGuard;
    task(0);
    drop(guard);
}

/// Spawns (but does not dispatch to) the helper threads the current
/// thread-count setting would use.
///
/// Call before a measured window so the one-time thread-spawn cost and
/// its allocations land outside the measurement; every later kernel then
/// pays only the park/unpark dispatch cost.
pub fn prewarm() {
    let t = threads();
    if t <= 1 {
        return;
    }
    let _dispatch = match DISPATCH.try_lock() {
        Ok(g) => g,
        Err(TryLockError::Poisoned(p)) => p.into_inner(),
        Err(TryLockError::WouldBlock) => return,
    };
    ensure_spawned(&mut lock_pool(), t - 1);
}

/// Sends a raw pointer across the pool so each worker can reconstruct its
/// *disjoint* chunk of the output slice. Soundness rests on the kernels'
/// chunk geometry: no two worker indices ever map to overlapping ranges.
struct SendPtr<T>(*mut T);

unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor method (rather than field access) so closures capture the
    /// whole `Sync` wrapper instead of disjointly capturing the raw
    /// pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Row partitions
// ---------------------------------------------------------------------------

/// A precomputed, cache-aware, weight-balanced blocking of `0..rows`.
///
/// Block boundaries are a pure function of the per-row weight profile
/// (CSR row nonzeros, via the index pointer) and of nothing else — in
/// particular **never** of the thread count. [`for_each_partition_mut`]
/// lets workers steal whole blocks from a shared cursor: each output
/// element is still computed wholly by one worker inside a fixed block,
/// so results are bit-identical for every thread count while load
/// balancing adapts to however many workers show up.
///
/// Blocks target [`PARTITION_BLOCK_WEIGHT`] nonzeros each (sized so one
/// block's matrix traffic fits a per-core L2 slice) and are balanced to
/// within one maximal row of the ideal share — for operators whose
/// heaviest row is ≤ 10% of a block, that is the ±10% nnz balance the
/// blocking aims for. A partition is cheap to build (one binary search
/// per block) and is meant to be computed once per operator and cached —
/// `CsrMatrix` memoizes one per sparsity pattern, and the lumping /
/// implicit-operator plans carry one alongside their traversal maps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPartition {
    /// Block fence: `bounds[k]..bounds[k + 1]` is block `k`. Always has
    /// at least two entries (`0` and `rows`), strictly increasing in
    /// between.
    bounds: Vec<usize>,
    total_weight: usize,
}

impl RowPartition {
    /// Builds a partition from a non-decreasing weight prefix sum
    /// (`prefix.len() == rows + 1`; for CSR, pass the index pointer so
    /// `prefix[i + 1] - prefix[i]` is row `i`'s nonzero count).
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is empty.
    pub fn from_weight_prefix(prefix: &[usize]) -> Self {
        assert!(
            !prefix.is_empty(),
            "weight prefix needs at least the leading total"
        );
        debug_assert!(prefix.windows(2).all(|w| w[0] <= w[1]));
        let rows = prefix.len() - 1;
        let total = prefix[rows] - prefix[0];
        let nblocks = if rows == 0 {
            1
        } else {
            (total / PARTITION_BLOCK_WEIGHT).clamp(1, rows)
        };
        let mut bounds = Vec::with_capacity(nblocks + 1);
        bounds.push(0);
        for k in 1..nblocks {
            // Boundary k: the row count whose cumulative weight first
            // exceeds an equal share of the total. Identical targets (a
            // single row heavier than a share) collapse into one block.
            let target = prefix[0] + ((total as u128 * k as u128) / nblocks as u128) as usize;
            let b = prefix[1..=rows].partition_point(|&w| w <= target);
            let last = *bounds.last().expect("bounds non-empty");
            if b > last && b < rows {
                bounds.push(b);
            }
        }
        bounds.push(rows);
        RowPartition {
            bounds,
            total_weight: total,
        }
    }

    /// Builds an evenly-cut partition for `rows` outputs whose true
    /// per-row weights are unknown but whose *total* work is
    /// `total_weight` — e.g. an implicit Kronecker operator, where the
    /// compact factor nnz says nothing about per-product-row cost (which
    /// is uniform) but the total drives the block count and the
    /// parallel-gate decision.
    pub fn uniform(rows: usize, total_weight: usize) -> Self {
        let nblocks = if rows == 0 {
            1
        } else {
            (total_weight / PARTITION_BLOCK_WEIGHT).clamp(1, rows)
        };
        let mut bounds = Vec::with_capacity(nblocks + 1);
        for k in 0..=nblocks {
            bounds.push(((rows as u128 * k as u128) / nblocks as u128) as usize);
        }
        RowPartition {
            bounds,
            total_weight,
        }
    }

    /// Number of rows covered.
    pub fn rows(&self) -> usize {
        *self.bounds.last().expect("bounds non-empty")
    }

    /// Number of blocks (≥ 1; a single possibly-empty block for
    /// zero-row partitions).
    pub fn blocks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Row range of block `k`.
    pub fn block(&self, k: usize) -> Range<usize> {
        self.bounds[k]..self.bounds[k + 1]
    }

    /// Total weight the partition was built from (drives the
    /// [`PARALLEL_NNZ_CUTOFF`] gate).
    pub fn total_weight(&self) -> usize {
        self.total_weight
    }

    /// The block fence (`blocks() + 1` entries, first `0`, last
    /// [`rows`](Self::rows)).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }
}

/// Per-kernel-invocation worker profiler, active only while a sink is
/// installed (`None` otherwise — the disabled path adds one relaxed
/// atomic load per kernel call and allocates nothing).
struct ScopeObs {
    kernel: &'static str,
    /// Span open on the launching thread, so worker-lane spans link back
    /// to the scope that fanned out.
    parent: u64,
    start: Instant,
    busy: Vec<AtomicU64>,
    /// Offset (ns since `start`) at which the earliest worker began its
    /// share — everything before it is dispatch wake-up.
    first_start_ns: AtomicU64,
    /// Offset at which the latest worker finished its share —
    /// everything after it is the join.
    last_end_ns: AtomicU64,
}

impl ScopeObs {
    fn new(kernel: &'static str, workers: usize) -> Option<Self> {
        if !obs::enabled() {
            return None;
        }
        Some(ScopeObs {
            kernel,
            parent: obs::current_span_id(),
            start: Instant::now(),
            busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            first_start_ns: AtomicU64::new(u64::MAX),
            last_end_ns: AtomicU64::new(0),
        })
    }

    /// Runs one worker's whole share under a `par.worker` span.
    ///
    /// `pin_lane` gives pool thread `worker` the stable trace lane
    /// `worker + 1` — but only when the thread has no lane yet, so
    /// nested kernels (a worker's share running a serial inner kernel)
    /// fall back to fresh lane ids instead of colliding with the outer
    /// pool's lanes. The caller-thread share (worker 0) passes
    /// `pin_lane = false` and stays on the caller's own lane.
    fn run<R>(this: Option<&Self>, worker: usize, pin_lane: bool, f: impl FnOnce() -> R) -> R {
        let Some(s) = this else { return f() };
        let _lane = (pin_lane && !obs::has_lane()).then(|| obs::lane(worker as u64 + 1));
        let _span = obs::span_child_of("par.worker", s.parent);
        let t0 = s.start.elapsed().as_nanos() as u64;
        let r = f();
        let t1 = s.start.elapsed().as_nanos() as u64;
        s.busy[worker].fetch_add(t1 - t0, Ordering::Relaxed);
        s.first_start_ns.fetch_min(t0, Ordering::Relaxed);
        s.last_end_ns.fetch_max(t1, Ordering::Relaxed);
        r
    }

    /// Emits the per-scope utilization records once every worker joined.
    ///
    /// `par.utilization` is busy time over the workers' *busy window*
    /// (earliest worker start to latest worker end) — dispatch wake-up
    /// and the join are excluded from the denominator, so the gauge
    /// measures how well the dispatched work kept the pool busy rather
    /// than how the work compares to dispatch overhead (which made
    /// short dispatches read ~0.2 regardless of balance). The full
    /// dispatch wall time, wake-up included, still ships on the kernel
    /// event as `wall_ns` next to `window_ns`.
    fn finish(this: Option<Self>, threads: usize) {
        let Some(s) = this else { return };
        let wall = s.start.elapsed().as_nanos() as u64;
        let mut total = 0u64;
        for b in &s.busy {
            let ns = b.load(Ordering::Relaxed);
            total += ns;
            obs::histogram("par.worker.busy_ns", ns as f64);
        }
        let first = s.first_start_ns.load(Ordering::Relaxed);
        let last = s.last_end_ns.load(Ordering::Relaxed);
        let window = if first == u64::MAX {
            0
        } else {
            last.saturating_sub(first)
        };
        let util = if window == 0 || threads == 0 {
            0.0
        } else {
            total as f64 / (threads as f64 * window as f64)
        };
        obs::gauge("par.utilization", util);
        obs::event(
            s.kernel,
            &[
                ("threads", threads.into()),
                ("wall_ns", wall.into()),
                ("window_ns", window.into()),
                ("busy_ns", total.into()),
                ("utilization", util.into()),
            ],
        );
    }
}

/// Splits `out` into at most `threads()` contiguous chunks and runs
/// `body(start, chunk)` on each, in parallel.
///
/// `start` is the offset of `chunk` within `out`. The body must compute
/// each output element independently of the chunk geometry — that is what
/// makes the result bit-identical for every thread count. Small slices
/// (below [`PARALLEL_CUTOFF`]) run serially as a single chunk.
pub fn for_each_chunk_mut<T, F>(out: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for_each_chunk_aligned_mut(out, 1, body);
}

/// Like [`for_each_chunk_mut`] but chunk boundaries are multiples of
/// `align` elements.
///
/// Used when the output is logically a sequence of fixed-size blocks that
/// must not be split across workers (e.g. the per-mode blocks of a
/// Kronecker-factor apply).
pub fn for_each_chunk_aligned_mut<T, F>(out: &mut [T], align: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align >= 1, "alignment must be at least 1");
    assert!(
        out.len().is_multiple_of(align),
        "slice length must be a multiple of the alignment"
    );
    let n = out.len();
    let blocks = n / align;
    let t = threads().min(blocks.max(1));
    if t <= 1 || n < PARALLEL_CUTOFF {
        if !out.is_empty() {
            body(0, out);
        }
        return;
    }
    let base = blocks / t;
    let rem = blocks % t;
    let sobs = ScopeObs::new("par.for_each_chunk", t);
    let ptr = SendPtr(out.as_mut_ptr());
    let task = |w: usize| {
        // Worker w owns blocks [w·base + min(w, rem), (w+1)·base +
        // min(w+1, rem)): the same fence a sequential split would cut,
        // computed independently per worker.
        let b0 = w * base + w.min(rem);
        let b1 = (w + 1) * base + (w + 1).min(rem);
        let (s, e) = (b0 * align, b1 * align);
        if s == e {
            return;
        }
        ScopeObs::run(sobs.as_ref(), w, w != 0, || {
            // SAFETY: worker ranges are disjoint and within `out`.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
            body(s, chunk);
        });
    };
    run_pooled(t, &task);
    ScopeObs::finish(sobs, t);
}

/// Like [`for_each_chunk_mut`] but with chunk boundaries balanced by a
/// per-element *weight* prefix sum instead of element counts.
///
/// `prefix` must have length `out.len() + 1` and be non-decreasing;
/// `prefix[i+1] - prefix[i]` is the cost of producing `out[i]` (for a CSR
/// row-parallel product, pass the index pointer so each worker gets an
/// equal share of nonzeros rather than of rows). The kernel runs serially
/// when the total weight is below [`PARALLEL_NNZ_CUTOFF`] — the gate is
/// on work performed, not output length.
///
/// For repeated products against one operator, prefer building a
/// [`RowPartition`] once and dispatching through
/// [`for_each_partition_mut`]: same balance, no per-call binary searches,
/// and block stealing rides out load imbalance.
///
/// The determinism contract holds exactly as for [`for_each_chunk_mut`]:
/// each output element is computed wholly by one worker in serial
/// element-local order, so boundaries may depend on the thread count.
///
/// # Panics
///
/// Panics if `prefix.len() != out.len() + 1`.
pub fn for_each_weighted_chunk_mut<T, F>(out: &mut [T], prefix: &[usize], body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    assert_eq!(
        prefix.len(),
        n + 1,
        "weight prefix must have one entry per element plus a total"
    );
    debug_assert!(prefix.windows(2).all(|w| w[0] <= w[1]));
    let total = prefix[n] - prefix[0];
    let t = threads().min(n.max(1));
    if t <= 1 || total < PARALLEL_NNZ_CUTOFF {
        if !out.is_empty() {
            body(0, out);
        }
        return;
    }
    let sobs = ScopeObs::new("par.for_each_weighted_chunk", t);
    let ptr = SendPtr(out.as_mut_ptr());
    // Fence after chunk k − 1: the element count whose cumulative weight
    // first exceeds an equal share of the total. `partition_point` is
    // monotone in the target, so each worker can compute both of its own
    // fences independently; the last fence is forced to `n` so trailing
    // zero-weight elements are still covered.
    let bound = |k: usize| -> usize {
        if k == 0 {
            0
        } else if k == t {
            n
        } else {
            let target = prefix[0] + ((total as u128 * k as u128) / t as u128) as usize;
            prefix[1..=n].partition_point(|&w| w <= target)
        }
    };
    let task = |w: usize| {
        let (s, e) = (bound(w), bound(w + 1));
        if s == e {
            return;
        }
        ScopeObs::run(sobs.as_ref(), w, w != 0, || {
            // SAFETY: fences are non-decreasing in w, so ranges are
            // disjoint and within `out`.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
            body(s, chunk);
        });
    };
    run_pooled(t, &task);
    ScopeObs::finish(sobs, t);
}

/// Runs `body(start, chunk)` over the blocks of a precomputed
/// [`RowPartition`], stealing blocks from a shared cursor.
///
/// This is the steady-state form of [`for_each_weighted_chunk_mut`] for
/// operators applied many times: the weight-balancing binary searches are
/// paid once at partition build, each block's working set is sized for
/// L2 residency, and because the block fence never depends on the thread
/// count, the stealing schedule cannot change a single output bit —
/// every element is produced wholly by one worker inside a fixed block.
///
/// Runs serially (one `body(0, out)` call) when the partition's total
/// weight is under [`PARALLEL_NNZ_CUTOFF`] or only one thread is
/// resolved.
///
/// # Panics
///
/// Panics if the partition does not cover `out` exactly.
pub fn for_each_partition_mut<T, F>(out: &mut [T], part: &RowPartition, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert_eq!(
        part.rows(),
        out.len(),
        "partition must cover the output slice exactly"
    );
    let nb = part.blocks();
    let t = threads().min(nb);
    if t <= 1 || part.total_weight() < PARALLEL_NNZ_CUTOFF {
        if !out.is_empty() {
            body(0, out);
        }
        return;
    }
    let sobs = ScopeObs::new("par.for_each_partition", t);
    let cursor = AtomicUsize::new(0);
    let ptr = SendPtr(out.as_mut_ptr());
    let task = |w: usize| {
        ScopeObs::run(sobs.as_ref(), w, w != 0, || loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            if k >= nb {
                break;
            }
            let r = part.block(k);
            if r.is_empty() {
                continue;
            }
            // SAFETY: blocks are disjoint and the cursor hands each block
            // to exactly one worker.
            let chunk = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(r.start), r.len()) };
            body(r.start, chunk);
        })
    };
    run_pooled(t, &task);
    ScopeObs::finish(sobs, t);
}

/// Like [`for_each_weighted_chunk_mut`] but chunk boundaries fall on
/// *group* boundaries and each worker borrows one caller-provided scratch
/// slot.
///
/// `out` is logically a concatenation of `group_ptr.len() - 1` contiguous
/// groups: group `g` owns `out[group_ptr[g]..group_ptr[g + 1]]`
/// (`group_ptr[0]` must be `0` and the last entry must be `out.len()`).
/// Groups are never split across workers — the kernel for a group may
/// need every element of its group (e.g. refreshing one coarse matrix row
/// from a sort-and-accumulate over its sources). `cost` is a
/// non-decreasing prefix of per-group work (length `groups + 1`), used to
/// balance the split exactly like [`for_each_weighted_chunk_mut`]'s
/// per-element prefix.
///
/// Each worker receives one `&mut S` slot from `scratch`; the worker
/// count is capped at `scratch.len()`, so callers preallocating
/// [`threads`]`()` slots keep the body allocation-free. `body(groups,
/// chunk, scratch)` gets the group index range, the slice covering
/// exactly those groups (`chunk[0]` is `out[group_ptr[groups.start]]`),
/// and its scratch slot.
///
/// The determinism contract holds as for [`for_each_chunk_mut`]: every
/// group is produced wholly by one worker in serial group-local order, so
/// results are bit-identical for every thread count.
///
/// # Panics
///
/// Panics if the pointer/cost arrays are inconsistent with `out`, or if
/// `scratch` is empty.
pub fn for_each_grouped_chunk_mut<T, S, F>(
    out: &mut [T],
    group_ptr: &[usize],
    cost: &[usize],
    scratch: &mut [S],
    body: F,
) where
    T: Send,
    S: Send,
    F: Fn(Range<usize>, &mut [T], &mut S) + Sync,
{
    let g = group_ptr.len().checked_sub(1).expect("group_ptr non-empty");
    assert!(
        group_ptr[0] == 0 && group_ptr[g] == out.len(),
        "group pointers must cover the output slice"
    );
    assert_eq!(cost.len(), g + 1, "one cost entry per group plus a total");
    assert!(!scratch.is_empty(), "need at least one scratch slot");
    debug_assert!(group_ptr.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(cost.windows(2).all(|w| w[0] <= w[1]));
    let total = cost[g] - cost[0];
    let t = threads().min(scratch.len()).min(g.max(1));
    if t <= 1 || total < PARALLEL_NNZ_CUTOFF {
        if g > 0 {
            body(0..g, out, &mut scratch[0]);
        }
        return;
    }
    let sobs = ScopeObs::new("par.for_each_grouped_chunk", t);
    let out_ptr = SendPtr(out.as_mut_ptr());
    let scratch_ptr = SendPtr(scratch.as_mut_ptr());
    // Group fence after chunk k − 1, computed per worker exactly as in
    // `for_each_weighted_chunk_mut` (monotone targets ⇒ non-decreasing
    // fences); the last fence is forced to `g` so zero-cost tails are
    // covered.
    let bound = |k: usize| -> usize {
        if k == 0 {
            0
        } else if k == t {
            g
        } else {
            let target = cost[0] + ((total as u128 * k as u128) / t as u128) as usize;
            cost[1..=g].partition_point(|&w| w <= target)
        }
    };
    let task = |w: usize| {
        let (s, e) = (bound(w), bound(w + 1));
        if s == e {
            return;
        }
        ScopeObs::run(sobs.as_ref(), w, w != 0, || {
            let (o0, o1) = (group_ptr[s], group_ptr[e]);
            // SAFETY: group fences are non-decreasing in w (disjoint
            // output ranges) and each worker index owns scratch slot w.
            let chunk = unsafe { std::slice::from_raw_parts_mut(out_ptr.get().add(o0), o1 - o0) };
            let slot = unsafe { &mut *scratch_ptr.get().add(w) };
            body(s..e, chunk, slot);
        });
    };
    run_pooled(t, &task);
    ScopeObs::finish(sobs, t);
}

/// Maps fixed-size chunks of `0..n` and returns the per-chunk results in
/// ascending chunk order.
///
/// `chunk` must be a pure function of the problem (a constant, or derived
/// from `n`), never of the thread count: the chunk geometry — and hence
/// any floating-point combine the caller performs over the returned
/// vector — is then identical for every thread count. Workers pull chunk
/// indices from a shared cursor, so load imbalance does not serialize the
/// pool.
pub fn map_chunks<R, F>(n: usize, chunk: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk >= 1, "chunk size must be at least 1");
    if n == 0 {
        return Vec::new();
    }
    let k = n.div_ceil(chunk);
    let range = |i: usize| i * chunk..((i + 1) * chunk).min(n);
    let t = threads().min(k);
    if t <= 1 || n < PARALLEL_CUTOFF {
        return (0..k).map(|i| body(range(i))).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(k);
    slots.resize_with(k, || None);
    let sobs = ScopeObs::new("par.map_chunks", t);
    {
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let task = |w: usize| {
            ScopeObs::run(sobs.as_ref(), w, w != 0, || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= k {
                    break;
                }
                let r = body(range(i));
                // SAFETY: the cursor hands index i to exactly one worker;
                // writing over the prepared `None` needs no drop.
                unsafe { slots_ptr.get().add(i).write(Some(r)) };
            })
        };
        run_pooled(t, &task);
    }
    ScopeObs::finish(sobs, t);
    slots
        .into_iter()
        .map(|r| r.expect("every chunk computed"))
        .collect()
}

/// Runs `k` independent tasks and returns their results in task order.
///
/// Tasks always fan out across the worker pool regardless of `k` (there
/// is no size cutoff — callers use this for coarse-grained work such as
/// Monte-Carlo shards where each task is expensive).
pub fn map_tasks<R, F>(k: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if k == 0 {
        return Vec::new();
    }
    let t = threads().min(k);
    if t <= 1 {
        return (0..k).map(&body).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(k);
    slots.resize_with(k, || None);
    let sobs = ScopeObs::new("par.map_tasks", t);
    {
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let task = |w: usize| {
            ScopeObs::run(sobs.as_ref(), w, w != 0, || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= k {
                    break;
                }
                let r = body(i);
                // SAFETY: the cursor hands index i to exactly one worker;
                // writing over the prepared `None` needs no drop.
                unsafe { slots_ptr.get().add(i).write(Some(r)) };
            })
        };
        run_pooled(t, &task);
    }
    ScopeObs::finish(sobs, t);
    slots
        .into_iter()
        .map(|r| r.expect("every task computed"))
        .collect()
}

/// Serializes tests (crate-wide) that mutate the global thread override.
#[cfg(test)]
pub(crate) static TEST_THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_THREADS_LOCK as LOCK;

    #[test]
    fn thread_resolution_override_wins() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn chunked_mut_covers_every_element_once() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF + 37;
        let mut out = vec![0usize; n];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn aligned_chunks_respect_block_boundaries() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        let block = 16;
        let n = PARALLEL_CUTOFF + 7 * block;
        let mut out = vec![0usize; n];
        for_each_chunk_aligned_mut(&mut out, block, |start, chunk| {
            assert_eq!(start % block, 0);
            assert_eq!(chunk.len() % block, 0);
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn weighted_chunks_cover_every_element_once() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        // Skewed weights: a few heavy rows at the front, a zero-weight
        // tail that only the forced final boundary can cover.
        let n = 4000;
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        prefix.push(acc);
        for i in 0..n {
            acc += if i < 100 {
                1500
            } else if i < n - 64 {
                3
            } else {
                0
            };
            prefix.push(acc);
        }
        assert!(acc >= PARALLEL_NNZ_CUTOFF);
        let mut out = vec![0usize; n];
        for_each_weighted_chunk_mut(&mut out, &prefix, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn grouped_chunks_cover_every_group_once_on_boundaries() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        // Variable-width groups with skewed costs: heavy groups up front,
        // a zero-cost tail only the forced final boundary can cover.
        let groups = 3000;
        let mut group_ptr = Vec::with_capacity(groups + 1);
        let mut cost = Vec::with_capacity(groups + 1);
        let (mut off, mut acc) = (0usize, 0usize);
        group_ptr.push(off);
        cost.push(acc);
        for gi in 0..groups {
            off += 1 + gi % 5;
            acc += if gi < 80 {
                2000
            } else if gi < groups - 50 {
                7
            } else {
                0
            };
            group_ptr.push(off);
            cost.push(acc);
        }
        assert!(acc >= PARALLEL_NNZ_CUTOFF);
        let mut out = vec![usize::MAX; off];
        let mut scratch = vec![0usize; threads()];
        for_each_grouped_chunk_mut(&mut out, &group_ptr, &cost, &mut scratch, |gr, chunk, s| {
            // The chunk starts exactly at the first group's boundary.
            assert_eq!(chunk.len(), group_ptr[gr.end] - group_ptr[gr.start]);
            let base = group_ptr[gr.start];
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = base + k;
            }
            *s += gr.len();
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        // Every group was visited exactly once across all scratch slots.
        assert_eq!(scratch.iter().sum::<usize>(), groups);
    }

    #[test]
    fn grouped_chunks_serial_below_cost_gate() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let groups = 512;
        let group_ptr: Vec<usize> = (0..=groups).map(|i| i * 3).collect();
        let cost: Vec<usize> = (0..=groups).map(|i| i * 2).collect();
        assert!(cost[groups] < PARALLEL_NNZ_CUTOFF);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; groups * 3];
        let mut scratch = vec![(); 4];
        for_each_grouped_chunk_mut(&mut out, &group_ptr, &cost, &mut scratch, |_, _, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        set_threads(None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn weighted_chunks_serial_below_weight_gate() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        // Many elements, tiny total weight: must run as one serial chunk.
        let n = PARALLEL_CUTOFF * 2;
        let prefix: Vec<usize> = (0..=n).map(|i| i / 8).collect();
        assert!(prefix[n] < PARALLEL_NNZ_CUTOFF);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; n];
        for_each_weighted_chunk_mut(&mut out, &prefix, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        set_threads(None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_chunks_is_ordered_and_complete() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF * 2 + 11;
        let parts = map_chunks(n, 1000, |r| r.len());
        set_threads(None);
        assert_eq!(parts.iter().sum::<usize>(), n);
        // Every chunk except the last has the fixed size.
        assert!(parts[..parts.len() - 1].iter().all(|&l| l == 1000));
    }

    #[test]
    fn map_tasks_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let out = map_tasks(33, |i| i * i);
        set_threads(None);
        assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_kernels_profile_their_workers() {
        let _g = LOCK.lock().unwrap();
        let _ = obs::uninstall();
        set_threads(Some(4));
        obs::install(Box::new(obs::SummarySink::new()));
        let mut out = vec![0.0f64; PARALLEL_CUTOFF * 2];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as f64;
            }
        });
        let _sums = map_chunks(PARALLEL_CUTOFF * 2, 4096, |r| r.len());
        let report = obs::uninstall().and_then(|mut s| s.finish()).unwrap();
        set_threads(None);
        assert!(report.contains("par.worker"), "{report}");
        assert!(report.contains("par.utilization"), "{report}");
        assert!(report.contains("par.worker.busy_ns"), "{report}");
        assert!(report.contains("par.for_each_chunk"), "{report}");
        assert!(report.contains("par.map_chunks"), "{report}");
    }

    /// Regression for the utilization denominator: a balanced
    /// compute-bound dispatch must read as a busy pool now that
    /// wake-up/join are out of the denominator (the old full-wall
    /// version averaged ~0.2 on short dispatches regardless of balance).
    /// A retry loop keeps transient scheduler preemption (shared CI
    /// runners) from failing the assertion: genuine undercounting
    /// repeats on every attempt, noise does not.
    #[test]
    fn utilization_measures_busy_window_not_spinup() {
        let _g = LOCK.lock().unwrap();
        let _ = obs::uninstall();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF * 4;
        let mut best = 0.0f64;
        for _ in 0..5 {
            let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
            obs::install(Box::new(sink));
            // Heavy enough per worker (~ms) that dispatch wake-up skew is
            // a small fraction of the busy window.
            let parts = map_chunks(n, n / 64, |r| {
                let mut acc = 0.0f64;
                for i in r {
                    let mut x = (i as f64).sqrt();
                    for _ in 0..24 {
                        x = (x + 1.5).sin() * (x + 2.5).cos() + x.abs().sqrt();
                    }
                    acc += x;
                }
                acc
            });
            obs::uninstall();
            assert_eq!(parts.len(), 64);
            let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
            let art = obs::artifact::Artifact::load_jsonl(&text).unwrap();
            let util = art.gauges["par.utilization"];
            assert!(
                (0.0..=1.0).contains(&util),
                "utilization {util} out of range"
            );
            best = best.max(util);
            if best > 0.5 {
                break;
            }
        }
        set_threads(None);
        assert!(
            best > 0.5,
            "balanced dispatch utilization peaked at {best}; \
             wake-up is back in the denominator"
        );
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let _g = LOCK.lock().unwrap();
        let n = PARALLEL_CUTOFF * 3 + 5;
        let data: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum_with = |t: usize| {
            set_threads(Some(t));
            let parts = map_chunks(n, 4096, |r| data[r].iter().sum::<f64>());
            set_threads(None);
            parts.iter().sum::<f64>()
        };
        let s1 = sum_with(1);
        for t in [2, 3, 8] {
            assert_eq!(s1.to_bits(), sum_with(t).to_bits());
        }
    }

    // -- RowPartition ------------------------------------------------------

    /// Skewed CSR-like prefix: heavy rows up front, light middle, empty
    /// tail.
    fn skewed_prefix(n: usize) -> Vec<usize> {
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        prefix.push(acc);
        for i in 0..n {
            acc += if i < 40 {
                3000
            } else if i < n - 128 {
                5
            } else {
                0
            };
            prefix.push(acc);
        }
        prefix
    }

    #[test]
    fn row_partition_covers_every_row_exactly_once() {
        let prefix = skewed_prefix(20_000);
        let part = RowPartition::from_weight_prefix(&prefix);
        let b = part.bounds();
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 20_000);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "fence must be strict");
        let covered: usize = (0..part.blocks()).map(|k| part.block(k).len()).sum();
        assert_eq!(covered, part.rows());
        assert_eq!(part.total_weight(), prefix[20_000]);
    }

    #[test]
    fn row_partition_blocks_are_weight_balanced() {
        // Uniform-ish weights: every block must land within one maximal
        // row of the ideal share (the documented balance bound).
        let n = 50_000;
        let prefix: Vec<usize> = (0..=n).map(|i| i * 11).collect();
        let part = RowPartition::from_weight_prefix(&prefix);
        assert!(part.blocks() > 1, "enough weight to split");
        let ideal = part.total_weight() as f64 / part.blocks() as f64;
        for k in 0..part.blocks() {
            let r = part.block(k);
            let w = (prefix[r.end] - prefix[r.start]) as f64;
            assert!(
                (w - ideal).abs() <= 11.0,
                "block {k} weight {w} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn row_partition_is_thread_count_independent() {
        // The fence is a pure function of the weights: building it never
        // consults `threads()`.
        let _g = LOCK.lock().unwrap();
        let prefix = skewed_prefix(10_000);
        set_threads(Some(1));
        let p1 = RowPartition::from_weight_prefix(&prefix);
        set_threads(Some(7));
        let p7 = RowPartition::from_weight_prefix(&prefix);
        set_threads(None);
        assert_eq!(p1, p7);
    }

    #[test]
    fn row_partition_edge_cases() {
        // Empty: one empty block.
        let empty = RowPartition::from_weight_prefix(&[0]);
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.blocks(), 1);
        assert_eq!(empty.block(0), 0..0);

        // Single heavy row: cannot split below a row.
        let single = RowPartition::from_weight_prefix(&[0, 10 * PARTITION_BLOCK_WEIGHT]);
        assert_eq!(single.rows(), 1);
        assert_eq!(single.blocks(), 1);

        // All weight in one middle row: the fence collapses duplicate
        // boundaries instead of emitting empty blocks.
        let n = 1000;
        let mut prefix = vec![0usize; n + 1];
        for (i, p) in prefix.iter_mut().enumerate() {
            *p = if i > n / 2 {
                20 * PARTITION_BLOCK_WEIGHT
            } else {
                0
            };
        }
        let spike = RowPartition::from_weight_prefix(&prefix);
        assert_eq!(spike.rows(), n);
        assert!(spike.bounds().windows(2).all(|w| w[0] < w[1]));
        let covered: usize = (0..spike.blocks()).map(|k| spike.block(k).len()).sum();
        assert_eq!(covered, n);
    }

    #[test]
    fn row_partition_uniform_covers() {
        let part = RowPartition::uniform(12_345, 40 * PARTITION_BLOCK_WEIGHT);
        assert_eq!(part.rows(), 12_345);
        assert_eq!(part.blocks(), 40);
        assert!(part.bounds().windows(2).all(|w| w[0] < w[1]));
        // Blocks within one row of each other.
        let lens: Vec<usize> = (0..part.blocks()).map(|k| part.block(k).len()).collect();
        let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        assert!(hi - lo <= 1);
    }

    #[test]
    fn partition_kernel_covers_every_element_once() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = 30_000;
        let prefix = skewed_prefix(n);
        assert!(prefix[n] >= PARALLEL_NNZ_CUTOFF);
        let part = RowPartition::from_weight_prefix(&prefix);
        let mut out = vec![0usize; n];
        for_each_partition_mut(&mut out, &part, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn partition_kernel_serial_below_weight_gate() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = 4096;
        let part = RowPartition::uniform(n, PARALLEL_NNZ_CUTOFF - 1);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; n];
        for_each_partition_mut(&mut out, &part, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        set_threads(None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn partition_kernel_is_thread_count_invariant() {
        let _g = LOCK.lock().unwrap();
        let n = 40_000;
        let prefix = skewed_prefix(n);
        let part = RowPartition::from_weight_prefix(&prefix);
        let run_with = |t: usize| {
            set_threads(Some(t));
            let mut out = vec![0.0f64; n];
            for_each_partition_mut(&mut out, &part, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    let i = start + k;
                    *v = (i as f64).sqrt().sin() + 1.0 / (i as f64 + 1.0);
                }
            });
            set_threads(None);
            out
        };
        let r1 = run_with(1);
        for t in [2, 4, 8] {
            let rt = run_with(t);
            assert!(
                r1.iter().zip(&rt).all(|(a, b)| a.to_bits() == b.to_bits()),
                "partition kernel drifted at t={t}"
            );
        }
    }

    // -- Persistent pool ---------------------------------------------------

    /// Live thread count of this process (Linux procfs).
    fn process_threads() -> usize {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(0)
    }

    #[test]
    fn pool_workers_persist_across_dispatches() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        prewarm();
        let mut out = vec![0usize; PARALLEL_CUTOFF * 2];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        let after_first = process_threads();
        for _ in 0..10 {
            for_each_chunk_mut(&mut out, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = start + k;
                }
            });
        }
        let after_many = process_threads();
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        if after_first > 0 {
            assert_eq!(
                after_first, after_many,
                "pool respawned threads between dispatches"
            );
        }
    }

    #[test]
    fn nested_dispatch_runs_serially_and_correctly() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        // Outer fan-out holds the dispatch lock; inner kernels above the
        // cutoff must detect it and run serial shares with identical
        // results.
        let n = PARALLEL_CUTOFF * 2;
        let sums = map_tasks(4, |task| {
            let mut out = vec![0.0f64; n];
            for_each_chunk_mut(&mut out, |start, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (task * n + start + k) as f64;
                }
            });
            out.iter().sum::<f64>()
        });
        set_threads(None);
        let expect: Vec<f64> = (0..4)
            .map(|task| (0..n).map(|i| (task * n + i) as f64).sum::<f64>())
            .collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF * 2;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut out = vec![0u8; n];
            for_each_chunk_mut(&mut out, |start, _| {
                if start >= n / 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must propagate");
        // The pool must keep dispatching correctly afterwards.
        let mut out = vec![0usize; n];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }
}
