//! Deterministic scoped-thread parallel kernels.
//!
//! A zero-dependency worker layer built on `std::thread::scope`. Every
//! primitive here is designed around one contract:
//!
//! > **Determinism contract.** The numerical result of a parallel kernel
//! > is bit-identical for every thread count, including one.
//!
//! Two mechanisms enforce it:
//!
//! 1. **Disjoint output partitioning** ([`for_each_chunk_mut`],
//!    [`for_each_chunk_aligned_mut`]): the output slice is split into
//!    contiguous chunks and each output element is computed *wholly* by
//!    one worker, in the same element-local order as the serial loop.
//!    Chunk boundaries may depend on the thread count because no
//!    floating-point value ever crosses a boundary.
//! 2. **Fixed-shape reductions** ([`map_chunks`], [`map_tasks`]): work is
//!    cut into chunks whose boundaries are a pure function of the problem
//!    size (never of the thread count), and per-chunk partial results are
//!    combined by the caller in ascending chunk order. Workers may steal
//!    chunks in any order; the combine order is still deterministic.
//!
//! Thread-count resolution (highest precedence first):
//! [`set_threads`] (the `--threads` CLI flag) → the `STOCHCDR_THREADS`
//! environment variable → [`std::thread::available_parallelism`].
//!
//! When `stochcdr-obs` instrumentation is enabled, every parallel kernel
//! invocation additionally profiles its workers: each worker runs under a
//! `par.worker` span on its own trace lane (attributed to the span that
//! launched the kernel), per-worker busy nanoseconds feed the
//! `par.worker.busy_ns` histogram, and the busy/wall ratio is emitted as
//! the `par.utilization` gauge. All of it is timing-only — the numeric
//! results remain bit-identical whether instrumentation is on or off.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use stochcdr_obs as obs;

/// Minimum number of output elements before a kernel goes parallel.
///
/// Below this size the scoped-thread spawn overhead dominates; kernels
/// fall back to the serial path (which, per the determinism contract,
/// produces the same bits).
pub const PARALLEL_CUTOFF: usize = 8192;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV: OnceLock<Option<usize>> = OnceLock::new();

/// Hardware parallelism as reported by the OS (≥ 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    *ENV.get_or_init(|| {
        std::env::var("STOCHCDR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Overrides the worker count for all subsequent parallel kernels.
///
/// `Some(n)` pins the count to `n` (the `--threads N` CLI flag lands
/// here); `None` clears the override, falling back to `STOCHCDR_THREADS`
/// and then to [`available`].
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Resolved worker count: override → `STOCHCDR_THREADS` → hardware.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    env_threads().unwrap_or_else(available)
}

/// Per-kernel-invocation worker profiler, active only while a sink is
/// installed (`None` otherwise — the disabled path adds one relaxed
/// atomic load per kernel call and allocates nothing).
struct ScopeObs {
    kernel: &'static str,
    /// Span open on the launching thread, so worker-lane spans link back
    /// to the scope that fanned out.
    parent: u64,
    start: Instant,
    busy: Vec<AtomicU64>,
}

impl ScopeObs {
    fn new(kernel: &'static str, workers: usize) -> Option<Self> {
        if !obs::enabled() {
            return None;
        }
        Some(ScopeObs {
            kernel,
            parent: obs::current_span_id(),
            start: Instant::now(),
            busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Runs one worker's whole share under a `par.worker` span.
    ///
    /// `pin_lane` gives pool thread `worker` the stable trace lane
    /// `worker + 1` — but only when the thread has no lane yet, so
    /// nested kernels (a worker fanning out again) fall back to fresh
    /// lane ids instead of colliding with the outer pool's lanes.
    /// The caller-thread share of [`for_each_chunk_aligned_mut`] passes
    /// `pin_lane = false` and stays on the caller's own lane.
    fn run<R>(this: Option<&Self>, worker: usize, pin_lane: bool, f: impl FnOnce() -> R) -> R {
        let Some(s) = this else { return f() };
        let _lane = (pin_lane && !obs::has_lane()).then(|| obs::lane(worker as u64 + 1));
        let _span = obs::span_child_of("par.worker", s.parent);
        let t0 = Instant::now();
        let r = f();
        s.busy[worker].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    /// Emits the per-scope utilization records once every worker joined.
    fn finish(this: Option<Self>, threads: usize) {
        let Some(s) = this else { return };
        let wall = s.start.elapsed().as_nanos() as u64;
        let mut total = 0u64;
        for b in &s.busy {
            let ns = b.load(Ordering::Relaxed);
            total += ns;
            obs::histogram("par.worker.busy_ns", ns as f64);
        }
        let util = if wall == 0 || threads == 0 {
            0.0
        } else {
            total as f64 / (threads as f64 * wall as f64)
        };
        obs::gauge("par.utilization", util);
        obs::event(
            s.kernel,
            &[
                ("threads", threads.into()),
                ("wall_ns", wall.into()),
                ("busy_ns", total.into()),
                ("utilization", util.into()),
            ],
        );
    }
}

/// Splits `out` into at most `threads()` contiguous chunks and runs
/// `body(start, chunk)` on each, in parallel.
///
/// `start` is the offset of `chunk` within `out`. The body must compute
/// each output element independently of the chunk geometry — that is what
/// makes the result bit-identical for every thread count. Small slices
/// (below [`PARALLEL_CUTOFF`]) run serially as a single chunk.
pub fn for_each_chunk_mut<T, F>(out: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for_each_chunk_aligned_mut(out, 1, body);
}

/// Like [`for_each_chunk_mut`] but chunk boundaries are multiples of
/// `align` elements.
///
/// Used when the output is logically a sequence of fixed-size blocks that
/// must not be split across workers (e.g. the per-mode blocks of a
/// Kronecker-factor apply).
pub fn for_each_chunk_aligned_mut<T, F>(out: &mut [T], align: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align >= 1, "alignment must be at least 1");
    assert!(
        out.len().is_multiple_of(align),
        "slice length must be a multiple of the alignment"
    );
    let n = out.len();
    let blocks = n / align;
    let t = threads().min(blocks.max(1));
    if t <= 1 || n < PARALLEL_CUTOFF {
        if !out.is_empty() {
            body(0, out);
        }
        return;
    }
    let base = blocks / t;
    let rem = blocks % t;
    let sobs = ScopeObs::new("par.for_each_chunk", t);
    std::thread::scope(|scope| {
        let body = &body;
        let sobs = &sobs;
        let mut rest = out;
        let mut start = 0usize;
        let mut last: Option<(usize, &mut [T])> = None;
        for k in 0..t {
            let len = (base + usize::from(k < rem)) * align;
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            if k + 1 == t {
                // Run the final chunk on the calling thread.
                last = Some((start, chunk));
            } else {
                scope.spawn(move || ScopeObs::run(sobs.as_ref(), k, true, || body(start, chunk)));
            }
            start += len;
        }
        if let Some((s, chunk)) = last {
            ScopeObs::run(sobs.as_ref(), t - 1, false, || body(s, chunk));
        }
    });
    ScopeObs::finish(sobs, t);
}

/// Maps fixed-size chunks of `0..n` and returns the per-chunk results in
/// ascending chunk order.
///
/// `chunk` must be a pure function of the problem (a constant, or derived
/// from `n`), never of the thread count: the chunk geometry — and hence
/// any floating-point combine the caller performs over the returned
/// vector — is then identical for every thread count. Workers pull chunk
/// indices from a shared cursor, so load imbalance does not serialize the
/// pool.
pub fn map_chunks<R, F>(n: usize, chunk: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk >= 1, "chunk size must be at least 1");
    if n == 0 {
        return Vec::new();
    }
    let k = n.div_ceil(chunk);
    let range = |i: usize| i * chunk..((i + 1) * chunk).min(n);
    let t = threads().min(k);
    if t <= 1 || n < PARALLEL_CUTOFF {
        return (0..k).map(|i| body(range(i))).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(k);
    slots.resize_with(k, || None);
    let sobs = ScopeObs::new("par.map_chunks", t);
    std::thread::scope(|scope| {
        let (sobs, cursor, body, range) = (&sobs, &cursor, &body, &range);
        let handles: Vec<_> = (0..t)
            .map(|w| {
                scope.spawn(move || {
                    ScopeObs::run(sobs.as_ref(), w, true, || {
                        let mut got = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= k {
                                break;
                            }
                            got.push((i, body(range(i))));
                        }
                        got
                    })
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    ScopeObs::finish(sobs, t);
    slots
        .into_iter()
        .map(|r| r.expect("every chunk computed"))
        .collect()
}

/// Runs `k` independent tasks and returns their results in task order.
///
/// Tasks always fan out across the worker pool regardless of `k` (there
/// is no size cutoff — callers use this for coarse-grained work such as
/// Monte-Carlo shards where each task is expensive).
pub fn map_tasks<R, F>(k: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if k == 0 {
        return Vec::new();
    }
    let t = threads().min(k);
    if t <= 1 {
        return (0..k).map(&body).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(k);
    slots.resize_with(k, || None);
    let sobs = ScopeObs::new("par.map_tasks", t);
    std::thread::scope(|scope| {
        let (sobs, cursor, body) = (&sobs, &cursor, &body);
        let handles: Vec<_> = (0..t)
            .map(|w| {
                scope.spawn(move || {
                    ScopeObs::run(sobs.as_ref(), w, true, || {
                        let mut got = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= k {
                                break;
                            }
                            got.push((i, body(i)));
                        }
                        got
                    })
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    ScopeObs::finish(sobs, t);
    slots
        .into_iter()
        .map(|r| r.expect("every task computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread override.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn thread_resolution_override_wins() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn chunked_mut_covers_every_element_once() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF + 37;
        let mut out = vec![0usize; n];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn aligned_chunks_respect_block_boundaries() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        let block = 16;
        let n = PARALLEL_CUTOFF + 7 * block;
        let mut out = vec![0usize; n];
        for_each_chunk_aligned_mut(&mut out, block, |start, chunk| {
            assert_eq!(start % block, 0);
            assert_eq!(chunk.len() % block, 0);
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn map_chunks_is_ordered_and_complete() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF * 2 + 11;
        let parts = map_chunks(n, 1000, |r| r.len());
        set_threads(None);
        assert_eq!(parts.iter().sum::<usize>(), n);
        // Every chunk except the last has the fixed size.
        assert!(parts[..parts.len() - 1].iter().all(|&l| l == 1000));
    }

    #[test]
    fn map_tasks_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let out = map_tasks(33, |i| i * i);
        set_threads(None);
        assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_kernels_profile_their_workers() {
        let _g = LOCK.lock().unwrap();
        let _ = obs::uninstall();
        set_threads(Some(4));
        obs::install(Box::new(obs::SummarySink::new()));
        let mut out = vec![0.0f64; PARALLEL_CUTOFF * 2];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as f64;
            }
        });
        let _sums = map_chunks(PARALLEL_CUTOFF * 2, 4096, |r| r.len());
        let report = obs::uninstall().and_then(|mut s| s.finish()).unwrap();
        set_threads(None);
        assert!(report.contains("par.worker"), "{report}");
        assert!(report.contains("par.utilization"), "{report}");
        assert!(report.contains("par.worker.busy_ns"), "{report}");
        assert!(report.contains("par.for_each_chunk"), "{report}");
        assert!(report.contains("par.map_chunks"), "{report}");
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let _g = LOCK.lock().unwrap();
        let n = PARALLEL_CUTOFF * 3 + 5;
        let data: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum_with = |t: usize| {
            set_threads(Some(t));
            let parts = map_chunks(n, 4096, |r| data[r].iter().sum::<f64>());
            set_threads(None);
            parts.iter().sum::<f64>()
        };
        let s1 = sum_with(1);
        for t in [2, 3, 8] {
            assert_eq!(s1.to_bits(), sum_with(t).to_bits());
        }
    }
}
