//! Deterministic scoped-thread parallel kernels.
//!
//! A zero-dependency worker layer built on `std::thread::scope`. Every
//! primitive here is designed around one contract:
//!
//! > **Determinism contract.** The numerical result of a parallel kernel
//! > is bit-identical for every thread count, including one.
//!
//! Two mechanisms enforce it:
//!
//! 1. **Disjoint output partitioning** ([`for_each_chunk_mut`],
//!    [`for_each_chunk_aligned_mut`]): the output slice is split into
//!    contiguous chunks and each output element is computed *wholly* by
//!    one worker, in the same element-local order as the serial loop.
//!    Chunk boundaries may depend on the thread count because no
//!    floating-point value ever crosses a boundary.
//! 2. **Fixed-shape reductions** ([`map_chunks`], [`map_tasks`]): work is
//!    cut into chunks whose boundaries are a pure function of the problem
//!    size (never of the thread count), and per-chunk partial results are
//!    combined by the caller in ascending chunk order. Workers may steal
//!    chunks in any order; the combine order is still deterministic.
//!
//! Thread-count resolution (highest precedence first):
//! [`set_threads`] (the `--threads` CLI flag) → the `STOCHCDR_THREADS`
//! environment variable → [`std::thread::available_parallelism`].
//!
//! When `stochcdr-obs` instrumentation is enabled, every parallel kernel
//! invocation additionally profiles its workers: each worker runs under a
//! `par.worker` span on its own trace lane (attributed to the span that
//! launched the kernel), per-worker busy nanoseconds feed the
//! `par.worker.busy_ns` histogram, and the ratio of busy time to the
//! workers' busy window (earliest worker start → latest worker end; pool
//! spin-up/teardown excluded) is emitted as the `par.utilization` gauge.
//! All of it is timing-only — the numeric results remain bit-identical
//! whether instrumentation is on or off.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use stochcdr_obs as obs;

/// Minimum number of output elements before a kernel goes parallel.
///
/// Below this size the scoped-thread spawn overhead dominates; kernels
/// fall back to the serial path (which, per the determinism contract,
/// produces the same bits). Elementwise kernels are memory-bound: under
/// ~0.5 MB of traffic the per-call spawn cost (tens of microseconds per
/// worker) exceeds the copy time itself, so the gate sits at 64k
/// elements. Measured on the FIG4 operator (4k states): parallel
/// elementwise passes at this size *cost* ~2x rather than paying.
pub const PARALLEL_CUTOFF: usize = 65_536;

/// Minimum total *weight* (e.g. matrix nonzeros) before a weighted kernel
/// ([`for_each_weighted_chunk_mut`]) goes parallel.
///
/// Weighted kernels gate on the work actually performed rather than the
/// output length: a tall-skinny CSR operator concentrates its flops in
/// few rows, so nonzeros — not rows — predict the win. The crossover is
/// bandwidth-bound: a 54k-nnz SpMV (~25 us of serial work) loses 2x to
/// spawn overhead at 4 threads, so the gate requires ~128k nonzeros
/// (~1.5 MB of matrix traffic) before fanning out.
pub const PARALLEL_NNZ_CUTOFF: usize = 131_072;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV: OnceLock<Option<usize>> = OnceLock::new();

/// Hardware parallelism as reported by the OS (≥ 1).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    *ENV.get_or_init(|| {
        std::env::var("STOCHCDR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Overrides the worker count for all subsequent parallel kernels.
///
/// `Some(n)` pins the count to `n` (the `--threads N` CLI flag lands
/// here); `None` clears the override, falling back to `STOCHCDR_THREADS`
/// and then to [`available`].
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Resolved worker count: override → `STOCHCDR_THREADS` → hardware.
pub fn threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    env_threads().unwrap_or_else(available)
}

/// Per-kernel-invocation worker profiler, active only while a sink is
/// installed (`None` otherwise — the disabled path adds one relaxed
/// atomic load per kernel call and allocates nothing).
struct ScopeObs {
    kernel: &'static str,
    /// Span open on the launching thread, so worker-lane spans link back
    /// to the scope that fanned out.
    parent: u64,
    start: Instant,
    busy: Vec<AtomicU64>,
    /// Offset (ns since `start`) at which the earliest worker began its
    /// share — everything before it is pool spin-up.
    first_start_ns: AtomicU64,
    /// Offset at which the latest worker finished its share —
    /// everything after it is join/teardown.
    last_end_ns: AtomicU64,
}

impl ScopeObs {
    fn new(kernel: &'static str, workers: usize) -> Option<Self> {
        if !obs::enabled() {
            return None;
        }
        Some(ScopeObs {
            kernel,
            parent: obs::current_span_id(),
            start: Instant::now(),
            busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            first_start_ns: AtomicU64::new(u64::MAX),
            last_end_ns: AtomicU64::new(0),
        })
    }

    /// Runs one worker's whole share under a `par.worker` span.
    ///
    /// `pin_lane` gives pool thread `worker` the stable trace lane
    /// `worker + 1` — but only when the thread has no lane yet, so
    /// nested kernels (a worker fanning out again) fall back to fresh
    /// lane ids instead of colliding with the outer pool's lanes.
    /// The caller-thread share of [`for_each_chunk_aligned_mut`] passes
    /// `pin_lane = false` and stays on the caller's own lane.
    fn run<R>(this: Option<&Self>, worker: usize, pin_lane: bool, f: impl FnOnce() -> R) -> R {
        let Some(s) = this else { return f() };
        let _lane = (pin_lane && !obs::has_lane()).then(|| obs::lane(worker as u64 + 1));
        let _span = obs::span_child_of("par.worker", s.parent);
        let t0 = s.start.elapsed().as_nanos() as u64;
        let r = f();
        let t1 = s.start.elapsed().as_nanos() as u64;
        s.busy[worker].fetch_add(t1 - t0, Ordering::Relaxed);
        s.first_start_ns.fetch_min(t0, Ordering::Relaxed);
        s.last_end_ns.fetch_max(t1, Ordering::Relaxed);
        r
    }

    /// Emits the per-scope utilization records once every worker joined.
    ///
    /// `par.utilization` is busy time over the workers' *busy window*
    /// (earliest worker start to latest worker end) — pool spin-up and
    /// join/teardown are excluded from the denominator, so the gauge
    /// measures how well the dispatched work kept the pool busy rather
    /// than how the work compares to thread-spawn overhead (which made
    /// short dispatches read ~0.2 regardless of balance). The full
    /// dispatch wall time, spin-up included, still ships on the kernel
    /// event as `wall_ns` next to `window_ns`.
    fn finish(this: Option<Self>, threads: usize) {
        let Some(s) = this else { return };
        let wall = s.start.elapsed().as_nanos() as u64;
        let mut total = 0u64;
        for b in &s.busy {
            let ns = b.load(Ordering::Relaxed);
            total += ns;
            obs::histogram("par.worker.busy_ns", ns as f64);
        }
        let first = s.first_start_ns.load(Ordering::Relaxed);
        let last = s.last_end_ns.load(Ordering::Relaxed);
        let window = if first == u64::MAX {
            0
        } else {
            last.saturating_sub(first)
        };
        let util = if window == 0 || threads == 0 {
            0.0
        } else {
            total as f64 / (threads as f64 * window as f64)
        };
        obs::gauge("par.utilization", util);
        obs::event(
            s.kernel,
            &[
                ("threads", threads.into()),
                ("wall_ns", wall.into()),
                ("window_ns", window.into()),
                ("busy_ns", total.into()),
                ("utilization", util.into()),
            ],
        );
    }
}

/// Splits `out` into at most `threads()` contiguous chunks and runs
/// `body(start, chunk)` on each, in parallel.
///
/// `start` is the offset of `chunk` within `out`. The body must compute
/// each output element independently of the chunk geometry — that is what
/// makes the result bit-identical for every thread count. Small slices
/// (below [`PARALLEL_CUTOFF`]) run serially as a single chunk.
pub fn for_each_chunk_mut<T, F>(out: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for_each_chunk_aligned_mut(out, 1, body);
}

/// Like [`for_each_chunk_mut`] but chunk boundaries are multiples of
/// `align` elements.
///
/// Used when the output is logically a sequence of fixed-size blocks that
/// must not be split across workers (e.g. the per-mode blocks of a
/// Kronecker-factor apply).
pub fn for_each_chunk_aligned_mut<T, F>(out: &mut [T], align: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align >= 1, "alignment must be at least 1");
    assert!(
        out.len().is_multiple_of(align),
        "slice length must be a multiple of the alignment"
    );
    let n = out.len();
    let blocks = n / align;
    let t = threads().min(blocks.max(1));
    if t <= 1 || n < PARALLEL_CUTOFF {
        if !out.is_empty() {
            body(0, out);
        }
        return;
    }
    let base = blocks / t;
    let rem = blocks % t;
    let sobs = ScopeObs::new("par.for_each_chunk", t);
    std::thread::scope(|scope| {
        let body = &body;
        let sobs = &sobs;
        let mut rest = out;
        let mut start = 0usize;
        let mut last: Option<(usize, &mut [T])> = None;
        for k in 0..t {
            let len = (base + usize::from(k < rem)) * align;
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            if k + 1 == t {
                // Run the final chunk on the calling thread.
                last = Some((start, chunk));
            } else {
                scope.spawn(move || ScopeObs::run(sobs.as_ref(), k, true, || body(start, chunk)));
            }
            start += len;
        }
        if let Some((s, chunk)) = last {
            ScopeObs::run(sobs.as_ref(), t - 1, false, || body(s, chunk));
        }
    });
    ScopeObs::finish(sobs, t);
}

/// Like [`for_each_chunk_mut`] but with chunk boundaries balanced by a
/// per-element *weight* prefix sum instead of element counts.
///
/// `prefix` must have length `out.len() + 1` and be non-decreasing;
/// `prefix[i+1] - prefix[i]` is the cost of producing `out[i]` (for a CSR
/// row-parallel product, pass the index pointer so each worker gets an
/// equal share of nonzeros rather than of rows). The kernel runs serially
/// when the total weight is below [`PARALLEL_NNZ_CUTOFF`] — the gate is
/// on work performed, not output length.
///
/// The determinism contract holds exactly as for [`for_each_chunk_mut`]:
/// each output element is computed wholly by one worker in serial
/// element-local order, so boundaries may depend on the thread count.
///
/// # Panics
///
/// Panics if `prefix.len() != out.len() + 1`.
pub fn for_each_weighted_chunk_mut<T, F>(out: &mut [T], prefix: &[usize], body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    assert_eq!(
        prefix.len(),
        n + 1,
        "weight prefix must have one entry per element plus a total"
    );
    debug_assert!(prefix.windows(2).all(|w| w[0] <= w[1]));
    let total = prefix[n] - prefix[0];
    let t = threads().min(n.max(1));
    if t <= 1 || total < PARALLEL_NNZ_CUTOFF {
        if !out.is_empty() {
            body(0, out);
        }
        return;
    }
    let sobs = ScopeObs::new("par.for_each_weighted_chunk", t);
    std::thread::scope(|scope| {
        let body = &body;
        let sobs = &sobs;
        let mut rest = out;
        let mut start = 0usize;
        for k in 0..t {
            // Boundary after chunk k: the element count whose cumulative
            // weight first exceeds an equal share of the total. The last
            // boundary is forced to `n` so trailing zero-weight elements
            // are still covered.
            let end = if k + 1 == t {
                n
            } else {
                let target = prefix[0] + ((total as u128 * (k as u128 + 1)) / t as u128) as usize;
                prefix[1..=n].partition_point(|&w| w <= target).max(start)
            };
            let (chunk, tail) = rest.split_at_mut(end - start);
            rest = tail;
            if chunk.is_empty() {
                start = end;
                continue;
            }
            if k + 1 == t {
                // Run the final chunk on the calling thread.
                ScopeObs::run(sobs.as_ref(), k, false, || body(start, chunk));
            } else {
                scope.spawn(move || ScopeObs::run(sobs.as_ref(), k, true, || body(start, chunk)));
            }
            start = end;
        }
    });
    ScopeObs::finish(sobs, t);
}

/// Like [`for_each_weighted_chunk_mut`] but chunk boundaries fall on
/// *group* boundaries and each worker borrows one caller-provided scratch
/// slot.
///
/// `out` is logically a concatenation of `group_ptr.len() - 1` contiguous
/// groups: group `g` owns `out[group_ptr[g]..group_ptr[g + 1]]`
/// (`group_ptr[0]` must be `0` and the last entry must be `out.len()`).
/// Groups are never split across workers — the kernel for a group may
/// need every element of its group (e.g. refreshing one coarse matrix row
/// from a sort-and-accumulate over its sources). `cost` is a
/// non-decreasing prefix of per-group work (length `groups + 1`), used to
/// balance the split exactly like [`for_each_weighted_chunk_mut`]'s
/// per-element prefix.
///
/// Each worker receives one `&mut S` slot from `scratch`; the worker
/// count is capped at `scratch.len()`, so callers preallocating
/// [`threads`]`()` slots keep the body allocation-free. `body(groups,
/// chunk, scratch)` gets the group index range, the slice covering
/// exactly those groups (`chunk[0]` is `out[group_ptr[groups.start]]`),
/// and its scratch slot.
///
/// The determinism contract holds as for [`for_each_chunk_mut`]: every
/// group is produced wholly by one worker in serial group-local order, so
/// results are bit-identical for every thread count.
///
/// # Panics
///
/// Panics if the pointer/cost arrays are inconsistent with `out`, or if
/// `scratch` is empty.
pub fn for_each_grouped_chunk_mut<T, S, F>(
    out: &mut [T],
    group_ptr: &[usize],
    cost: &[usize],
    scratch: &mut [S],
    body: F,
) where
    T: Send,
    S: Send,
    F: Fn(Range<usize>, &mut [T], &mut S) + Sync,
{
    let g = group_ptr.len().checked_sub(1).expect("group_ptr non-empty");
    assert!(
        group_ptr[0] == 0 && group_ptr[g] == out.len(),
        "group pointers must cover the output slice"
    );
    assert_eq!(cost.len(), g + 1, "one cost entry per group plus a total");
    assert!(!scratch.is_empty(), "need at least one scratch slot");
    debug_assert!(group_ptr.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(cost.windows(2).all(|w| w[0] <= w[1]));
    let total = cost[g] - cost[0];
    let t = threads().min(scratch.len()).min(g.max(1));
    if t <= 1 || total < PARALLEL_NNZ_CUTOFF {
        if g > 0 {
            body(0..g, out, &mut scratch[0]);
        }
        return;
    }
    let sobs = ScopeObs::new("par.for_each_grouped_chunk", t);
    std::thread::scope(|scope| {
        let body = &body;
        let sobs = &sobs;
        let mut rest_out = out;
        let mut rest_scratch = scratch;
        let mut start = 0usize;
        for k in 0..t {
            // Boundary after chunk k: the group count whose cumulative
            // cost first exceeds an equal share of the total; the last
            // boundary is forced to `g` so zero-cost tails are covered.
            let end = if k + 1 == t {
                g
            } else {
                let target = cost[0] + ((total as u128 * (k as u128 + 1)) / t as u128) as usize;
                cost[1..=g].partition_point(|&w| w <= target).max(start)
            };
            let (chunk, out_tail) = rest_out.split_at_mut(group_ptr[end] - group_ptr[start]);
            rest_out = out_tail;
            let (slot, scratch_tail) = rest_scratch
                .split_first_mut()
                .expect("one scratch slot per worker");
            rest_scratch = scratch_tail;
            if start == end {
                continue;
            }
            let range = start..end;
            if k + 1 == t {
                // Run the final chunk on the calling thread.
                ScopeObs::run(sobs.as_ref(), k, false, || body(range, chunk, slot));
            } else {
                scope.spawn(move || {
                    ScopeObs::run(sobs.as_ref(), k, true, || body(range, chunk, slot))
                });
            }
            start = end;
        }
    });
    ScopeObs::finish(sobs, t);
}

/// Maps fixed-size chunks of `0..n` and returns the per-chunk results in
/// ascending chunk order.
///
/// `chunk` must be a pure function of the problem (a constant, or derived
/// from `n`), never of the thread count: the chunk geometry — and hence
/// any floating-point combine the caller performs over the returned
/// vector — is then identical for every thread count. Workers pull chunk
/// indices from a shared cursor, so load imbalance does not serialize the
/// pool.
pub fn map_chunks<R, F>(n: usize, chunk: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk >= 1, "chunk size must be at least 1");
    if n == 0 {
        return Vec::new();
    }
    let k = n.div_ceil(chunk);
    let range = |i: usize| i * chunk..((i + 1) * chunk).min(n);
    let t = threads().min(k);
    if t <= 1 || n < PARALLEL_CUTOFF {
        return (0..k).map(|i| body(range(i))).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(k);
    slots.resize_with(k, || None);
    let sobs = ScopeObs::new("par.map_chunks", t);
    std::thread::scope(|scope| {
        let (sobs, cursor, body, range) = (&sobs, &cursor, &body, &range);
        let handles: Vec<_> = (0..t)
            .map(|w| {
                scope.spawn(move || {
                    ScopeObs::run(sobs.as_ref(), w, true, || {
                        let mut got = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= k {
                                break;
                            }
                            got.push((i, body(range(i))));
                        }
                        got
                    })
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    ScopeObs::finish(sobs, t);
    slots
        .into_iter()
        .map(|r| r.expect("every chunk computed"))
        .collect()
}

/// Runs `k` independent tasks and returns their results in task order.
///
/// Tasks always fan out across the worker pool regardless of `k` (there
/// is no size cutoff — callers use this for coarse-grained work such as
/// Monte-Carlo shards where each task is expensive).
pub fn map_tasks<R, F>(k: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if k == 0 {
        return Vec::new();
    }
    let t = threads().min(k);
    if t <= 1 {
        return (0..k).map(&body).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(k);
    slots.resize_with(k, || None);
    let sobs = ScopeObs::new("par.map_tasks", t);
    std::thread::scope(|scope| {
        let (sobs, cursor, body) = (&sobs, &cursor, &body);
        let handles: Vec<_> = (0..t)
            .map(|w| {
                scope.spawn(move || {
                    ScopeObs::run(sobs.as_ref(), w, true, || {
                        let mut got = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= k {
                                break;
                            }
                            got.push((i, body(i)));
                        }
                        got
                    })
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    ScopeObs::finish(sobs, t);
    slots
        .into_iter()
        .map(|r| r.expect("every task computed"))
        .collect()
}

/// Serializes tests (crate-wide) that mutate the global thread override.
#[cfg(test)]
pub(crate) static TEST_THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_THREADS_LOCK as LOCK;

    #[test]
    fn thread_resolution_override_wins() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn chunked_mut_covers_every_element_once() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF + 37;
        let mut out = vec![0usize; n];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn aligned_chunks_respect_block_boundaries() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(3));
        let block = 16;
        let n = PARALLEL_CUTOFF + 7 * block;
        let mut out = vec![0usize; n];
        for_each_chunk_aligned_mut(&mut out, block, |start, chunk| {
            assert_eq!(start % block, 0);
            assert_eq!(chunk.len() % block, 0);
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn weighted_chunks_cover_every_element_once() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        // Skewed weights: a few heavy rows at the front, a zero-weight
        // tail that only the forced final boundary can cover.
        let n = 4000;
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        prefix.push(acc);
        for i in 0..n {
            acc += if i < 100 {
                1500
            } else if i < n - 64 {
                3
            } else {
                0
            };
            prefix.push(acc);
        }
        assert!(acc >= PARALLEL_NNZ_CUTOFF);
        let mut out = vec![0usize; n];
        for_each_weighted_chunk_mut(&mut out, &prefix, |start, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = start + k;
            }
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn grouped_chunks_cover_every_group_once_on_boundaries() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        // Variable-width groups with skewed costs: heavy groups up front,
        // a zero-cost tail only the forced final boundary can cover.
        let groups = 3000;
        let mut group_ptr = Vec::with_capacity(groups + 1);
        let mut cost = Vec::with_capacity(groups + 1);
        let (mut off, mut acc) = (0usize, 0usize);
        group_ptr.push(off);
        cost.push(acc);
        for gi in 0..groups {
            off += 1 + gi % 5;
            acc += if gi < 80 {
                2000
            } else if gi < groups - 50 {
                7
            } else {
                0
            };
            group_ptr.push(off);
            cost.push(acc);
        }
        assert!(acc >= PARALLEL_NNZ_CUTOFF);
        let mut out = vec![usize::MAX; off];
        let mut scratch = vec![0usize; threads()];
        for_each_grouped_chunk_mut(&mut out, &group_ptr, &cost, &mut scratch, |gr, chunk, s| {
            // The chunk starts exactly at the first group's boundary.
            assert_eq!(chunk.len(), group_ptr[gr.end] - group_ptr[gr.start]);
            let base = group_ptr[gr.start];
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = base + k;
            }
            *s += gr.len();
        });
        set_threads(None);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        // Every group was visited exactly once across all scratch slots.
        assert_eq!(scratch.iter().sum::<usize>(), groups);
    }

    #[test]
    fn grouped_chunks_serial_below_cost_gate() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let groups = 512;
        let group_ptr: Vec<usize> = (0..=groups).map(|i| i * 3).collect();
        let cost: Vec<usize> = (0..=groups).map(|i| i * 2).collect();
        assert!(cost[groups] < PARALLEL_NNZ_CUTOFF);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; groups * 3];
        let mut scratch = vec![(); 4];
        for_each_grouped_chunk_mut(&mut out, &group_ptr, &cost, &mut scratch, |_, _, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        set_threads(None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn weighted_chunks_serial_below_weight_gate() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        // Many elements, tiny total weight: must run as one serial chunk.
        let n = PARALLEL_CUTOFF * 2;
        let prefix: Vec<usize> = (0..=n).map(|i| i / 4).collect();
        assert!(prefix[n] < PARALLEL_NNZ_CUTOFF);
        let calls = std::sync::atomic::AtomicUsize::new(0);
        let mut out = vec![0u8; n];
        for_each_weighted_chunk_mut(&mut out, &prefix, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        set_threads(None);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_chunks_is_ordered_and_complete() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF * 2 + 11;
        let parts = map_chunks(n, 1000, |r| r.len());
        set_threads(None);
        assert_eq!(parts.iter().sum::<usize>(), n);
        // Every chunk except the last has the fixed size.
        assert!(parts[..parts.len() - 1].iter().all(|&l| l == 1000));
    }

    #[test]
    fn map_tasks_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(Some(4));
        let out = map_tasks(33, |i| i * i);
        set_threads(None);
        assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_kernels_profile_their_workers() {
        let _g = LOCK.lock().unwrap();
        let _ = obs::uninstall();
        set_threads(Some(4));
        obs::install(Box::new(obs::SummarySink::new()));
        let mut out = vec![0.0f64; PARALLEL_CUTOFF * 2];
        for_each_chunk_mut(&mut out, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as f64;
            }
        });
        let _sums = map_chunks(PARALLEL_CUTOFF * 2, 4096, |r| r.len());
        let report = obs::uninstall().and_then(|mut s| s.finish()).unwrap();
        set_threads(None);
        assert!(report.contains("par.worker"), "{report}");
        assert!(report.contains("par.utilization"), "{report}");
        assert!(report.contains("par.worker.busy_ns"), "{report}");
        assert!(report.contains("par.for_each_chunk"), "{report}");
        assert!(report.contains("par.map_chunks"), "{report}");
    }

    /// Regression for the utilization denominator: a balanced
    /// compute-bound dispatch must read as a busy pool now that
    /// spin-up/teardown are out of the denominator (the old full-wall
    /// version averaged ~0.2 on short dispatches regardless of balance).
    /// A retry loop keeps transient scheduler preemption (shared CI
    /// runners) from failing the assertion: genuine undercounting
    /// repeats on every attempt, noise does not.
    #[test]
    fn utilization_measures_busy_window_not_spinup() {
        let _g = LOCK.lock().unwrap();
        let _ = obs::uninstall();
        set_threads(Some(4));
        let n = PARALLEL_CUTOFF * 2;
        let mut best = 0.0f64;
        for _ in 0..5 {
            let (sink, buf) = obs::JsonLinesSink::to_shared_buffer();
            obs::install(Box::new(sink));
            // Heavy enough per worker (~ms) that worker-spawn skew is a
            // small fraction of the busy window.
            let parts = map_chunks(n, n / 64, |r| {
                let mut acc = 0.0f64;
                for i in r {
                    let mut x = (i as f64).sqrt();
                    for _ in 0..24 {
                        x = (x + 1.5).sin() * (x + 2.5).cos() + x.abs().sqrt();
                    }
                    acc += x;
                }
                acc
            });
            obs::uninstall();
            assert_eq!(parts.len(), 64);
            let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
            let art = obs::artifact::Artifact::load_jsonl(&text).unwrap();
            let util = art.gauges["par.utilization"];
            assert!(
                (0.0..=1.0).contains(&util),
                "utilization {util} out of range"
            );
            best = best.max(util);
            if best > 0.5 {
                break;
            }
        }
        set_threads(None);
        assert!(
            best > 0.5,
            "balanced dispatch utilization peaked at {best}; \
             spin-up is back in the denominator"
        );
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let _g = LOCK.lock().unwrap();
        let n = PARALLEL_CUTOFF * 3 + 5;
        let data: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum_with = |t: usize| {
            set_threads(Some(t));
            let parts = map_chunks(n, 4096, |r| data[r].iter().sum::<f64>());
            set_threads(None);
            parts.iter().sum::<f64>()
        };
        let s1 = sum_with(1);
        for t in [2, 3, 8] {
            assert_eq!(s1.to_bits(), sum_with(t).to_bits());
        }
    }
}
