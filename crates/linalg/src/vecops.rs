//! BLAS-1 style vector kernels used by the iterative solvers.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot requires equal lengths");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Sum of all entries.
pub fn sum(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// L1 norm (sum of absolute values).
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 (Euclidean) norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Max (infinity) norm.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// L1 distance between two vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dist1(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist1 requires equal lengths");
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum()
}

/// Max-norm distance between two vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dist_inf(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist_inf requires equal lengths");
    x.iter().zip(y).fold(0.0, |m, (a, b)| m.max((a - b).abs()))
}

/// Scales `x` in place so its entries sum to one.
///
/// Probability vectors are maintained in L1; this is the renormalization
/// applied after every power/multigrid step. Does nothing (and returns
/// `false`) when the current sum is zero or non-finite, so callers can
/// detect collapse.
pub fn normalize_l1(x: &mut [f64]) -> bool {
    let s = sum(x);
    if s == 0.0 || !s.is_finite() {
        return false;
    }
    let inv = 1.0 / s;
    for v in x.iter_mut() {
        *v *= inv;
    }
    true
}

/// Scales all entries by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Returns the uniform probability vector of length `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn uniform(n: usize) -> Vec<f64> {
    assert!(n > 0, "uniform vector needs positive length");
    vec![1.0 / n as f64; n]
}

/// Returns `true` if every entry is finite and non-negative.
pub fn is_nonnegative(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite() && *v >= 0.0)
}

/// Clamps tiny negative round-off (` >= -tol`) to zero in place.
///
/// # Panics
///
/// Panics (in debug builds) if an entry is more negative than `-tol`,
/// which indicates an actual algorithmic error rather than round-off.
pub fn clamp_roundoff(x: &mut [f64], tol: f64) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            debug_assert!(*v >= -tol, "entry {v} more negative than -{tol}");
            *v = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
    }

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn distances() {
        let x = [1.0, 2.0];
        let y = [4.0, 0.0];
        assert_eq!(dist1(&x, &y), 5.0);
        assert_eq!(dist_inf(&x, &y), 3.0);
    }

    #[test]
    fn normalize_handles_zero() {
        let mut x = [0.0, 0.0];
        assert!(!normalize_l1(&mut x));
        let mut y = [1.0, 3.0];
        assert!(normalize_l1(&mut y));
        assert!((sum(&y) - 1.0).abs() < 1e-15);
        assert_eq!(y[1], 0.75);
    }

    #[test]
    fn uniform_sums_to_one() {
        let u = uniform(7);
        assert!((sum(&u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonnegativity_check() {
        assert!(is_nonnegative(&[0.0, 1.0]));
        assert!(!is_nonnegative(&[-1e-30]));
        assert!(!is_nonnegative(&[f64::NAN]));
    }

    #[test]
    fn clamp_roundoff_zeros_tiny_negatives() {
        let mut x = [1.0, -1e-18, 0.5];
        clamp_roundoff(&mut x, 1e-12);
        assert_eq!(x[1], 0.0);
        assert_eq!(x[0], 1.0);
    }
}
