//! Property-based tests for the sparse kernels.

use proptest::prelude::*;
use stochcdr_linalg::{kron, vecops, CooMatrix, CsrMatrix, DenseMatrix, Permutation};

/// Strategy generating a random sparse matrix as triplets.
fn sparse(rows: usize, cols: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec((0..rows, 0..cols, -10.0f64..10.0), 0..rows * cols.min(40)).prop_map(
        move |trips| {
            let mut coo = CooMatrix::new(rows, cols);
            for (r, c, v) in trips {
                coo.push(r, c, v);
            }
            coo.to_csr()
        },
    )
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `x (A B) == (x A) B` — associativity of the product kernels.
    #[test]
    fn matmul_associates_with_mul_left(
        a in sparse(6, 5),
        b in sparse(5, 7),
        x in vector(6),
    ) {
        let ab = a.matmul(&b).unwrap();
        let lhs = ab.mul_left(&x);
        let rhs = b.mul_left(&a.mul_left(&x));
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-9, "{lhs:?} vs {rhs:?}");
        }
    }

    /// Transposition swaps the two product kernels.
    #[test]
    fn transpose_swaps_products(a in sparse(6, 4), x in vector(6)) {
        let lhs = a.mul_left(&x);
        let rhs = a.transpose().mul_right(&x);
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-10);
        }
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(a in sparse(5, 8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// CSR -> COO -> CSR round trip is the identity.
    #[test]
    fn coo_round_trip(a in sparse(7, 7)) {
        prop_assert_eq!(a.to_coo().to_csr(), a);
    }

    /// Dense and sparse products agree.
    #[test]
    fn dense_agrees_with_sparse(a in sparse(5, 6), x in vector(6)) {
        let d = a.to_dense();
        let ys = a.mul_right(&x);
        let yd = d.mul_right(&x);
        for (s, dd) in ys.iter().zip(&yd) {
            prop_assert!((s - dd).abs() < 1e-10);
        }
    }

    /// Mixed-product property: (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD).
    #[test]
    fn kron_mixed_product(
        a in sparse(3, 3),
        b in sparse(2, 2),
        c in sparse(3, 3),
        d in sparse(2, 2),
    ) {
        let lhs = kron::kron(&a, &b).matmul(&kron::kron(&c, &d)).unwrap();
        let rhs = kron::kron(&a.matmul(&c).unwrap(), &b.matmul(&d).unwrap());
        // Compare entrywise (patterns can differ by explicit zeros).
        for i in 0..lhs.rows() {
            for j in 0..lhs.cols() {
                prop_assert!((lhs.get(i, j) - rhs.get(i, j)).abs() < 1e-9);
            }
        }
    }

    /// LU solves reproduce the right-hand side.
    #[test]
    fn lu_solves(values in prop::collection::vec(-3.0f64..3.0, 16), b in vector(4)) {
        let mut m = DenseMatrix::from_rows(4, 4, &values);
        // Diagonal dominance guarantees solvability.
        for i in 0..4 {
            let row_sum: f64 = (0..4).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        let x = m.solve(&b).unwrap();
        let back = m.mul_right(&x);
        for (bb, e) in back.iter().zip(&b) {
            prop_assert!((bb - e).abs() < 1e-8);
        }
    }

    /// GMRES agrees with LU on diagonally dominant systems.
    #[test]
    fn gmres_agrees_with_lu(values in prop::collection::vec(-2.0f64..2.0, 25), b in vector(5)) {
        let mut dense = DenseMatrix::from_rows(5, 5, &values);
        for i in 0..5 {
            let row_sum: f64 = (0..5).map(|j| dense[(i, j)].abs()).sum();
            dense[(i, i)] = row_sum + 1.0;
        }
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            for j in 0..5 {
                coo.push(i, j, dense[(i, j)]);
            }
        }
        let sparse_m = coo.to_csr();
        let xg = stochcdr_linalg::gmres(
            &sparse_m, &b, None, &stochcdr_linalg::GmresOptions::default()).unwrap();
        let xl = dense.solve(&b).unwrap();
        for (g, l) in xg.x.iter().zip(&xl) {
            prop_assert!((g - l).abs() < 1e-6, "{:?} vs {:?}", xg.x, xl);
        }
    }

    /// Permutation preserves the multiset of values and inverts cleanly.
    #[test]
    fn permutation_preserves_values(perm_seed in prop::collection::vec(0u64..1000, 6), a in sparse(6, 6)) {
        let p = Permutation::from_sort_key(6, |i| perm_seed[i]);
        let b = p.permute_matrix(&a);
        prop_assert_eq!(a.nnz(), b.nnz());
        let back = p.inverted().permute_matrix(&b);
        prop_assert_eq!(back, a);
    }

    /// Row sums survive row scaling consistently.
    #[test]
    fn scale_rows_scales_sums(a in sparse(5, 5), factors in prop::collection::vec(0.1f64..3.0, 5)) {
        let scaled = a.scale_rows(&factors);
        let before = a.row_sums();
        let after = scaled.row_sums();
        for i in 0..5 {
            prop_assert!((after[i] - before[i] * factors[i]).abs() < 1e-9);
        }
    }

    /// normalize_l1 produces a unit-mass vector whenever mass is positive.
    #[test]
    fn normalize_l1_unit_mass(mut x in prop::collection::vec(0.0f64..10.0, 1..20)) {
        let had_mass = x.iter().sum::<f64>() > 0.0;
        let ok = vecops::normalize_l1(&mut x);
        prop_assert_eq!(ok, had_mass);
        if ok {
            prop_assert!((vecops::sum(&x) - 1.0).abs() < 1e-12);
        }
    }
}
