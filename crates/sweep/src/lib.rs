//! `stochcdr-sweep` — declarative parameter-grid sweeps over the CDR
//! model with Kronecker-factor caching and warm-started solves.
//!
//! The paper's payoff plots (Figure 4's noise levels, Figure 5's filter
//! lengths, the solver-scaling tables) are all *sweeps*: the same chain
//! assembled and solved at a grid of operating points. This crate turns
//! that pattern into a declarative [`SweepSpec`] executed by a parallel
//! engine with three wins over a hand-rolled loop:
//!
//! 1. **Factor caching** — assembly factors (data branches, decision
//!    tails, drift pmf, the TPM row skeleton, the multigrid hierarchy)
//!    are fetched from a [`FactorCache`] keyed by exactly the parameters
//!    each factor depends on, so a sweep axis that perturbs one factor
//!    (e.g. drift ppm touches only the `n_r` pmf) reuses all others.
//! 2. **Warm starts** — within a chunk of consecutive grid points, each
//!    stationary solve is seeded from the previous point's η (when the
//!    state spaces match), cutting iteration counts on smooth axes.
//! 3. **Determinism** — points run in parallel on the `linalg::par` pool
//!    under the PR 2 contract: results (and the emitted
//!    `stochcdr-sweep/1` JSON) are **bit-identical for every thread
//!    count**, with points merged in grid order. Warm-start seeding
//!    follows fixed chunk boundaries that never depend on the thread
//!    count.
//!
//! ```
//! use stochcdr::CdrConfig;
//! use stochcdr_sweep::{run, SweepAxis, SweepSpec};
//!
//! let base = CdrConfig::builder()
//!     .phases(4)
//!     .grid_refinement(2)
//!     .counter_len(4)
//!     .white_sigma_ui(0.08)
//!     .drift(2e-2, 8e-2)
//!     .build()
//!     .unwrap();
//! let spec = SweepSpec::new(base).axis(SweepAxis::CounterLen(vec![2, 4]));
//! let sweep = run(&spec).unwrap();
//! assert_eq!(sweep.points.len(), 2);
//! assert!(sweep.cache.hits > 0, "factors shared across points");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod json;
mod spec;

pub use engine::{run, run_map, run_with, PointCtx, SweepPoint, SweepRun, WARM_CHUNK};
pub use json::render;
pub use spec::{SweepAxis, SweepSpec};

pub use stochcdr_fsm::FactorCache;

/// JSON schema tag emitted by [`render`]; bump on breaking changes.
pub const SCHEMA_VERSION: &str = "stochcdr-sweep/1";
