//! Stable JSON rendering of sweep results (`stochcdr-sweep/1`).
//!
//! Only deterministic fields are emitted — no wall-clock times, no cache
//! statistics — so the rendered bytes are identical for every thread
//! count (the property the thread-identity test pins down).

use stochcdr_obs::json::{escape_into, write_f64};

use crate::engine::SweepPoint;
use crate::spec::SweepSpec;
use crate::SCHEMA_VERSION;

/// Renders a completed sweep as a `stochcdr-sweep/1` JSON document.
///
/// Layout:
///
/// ```json
/// {
///   "schema": "stochcdr-sweep/1",
///   "solver": "mg",
///   "tol": 1e-12,
///   "warm_start": true,
///   "axes": [{"name": "drift-ppm", "values": ["1e2", "2e2"]}],
///   "points": [{"flat": 0, "params": {"drift-ppm": "1e2"}, ...}]
/// }
/// ```
///
/// Floats use the same `{:e}` convention as `stochcdr-obs` snapshots
/// (non-finite values become `null`); points appear in grid order.
pub fn render(spec: &SweepSpec, points: &[SweepPoint]) -> String {
    let mut out = String::with_capacity(256 + points.len() * 256);
    out.push_str("{\n  \"schema\": ");
    escape_into(&mut out, SCHEMA_VERSION);
    out.push_str(",\n  \"solver\": ");
    escape_into(&mut out, spec.solver.cli_name());
    out.push_str(",\n  \"tol\": ");
    write_f64(&mut out, spec.tol);
    out.push_str(",\n  \"warm_start\": ");
    out.push_str(if spec.warm_start { "true" } else { "false" });
    out.push_str(",\n  \"axes\": [");
    for (i, axis) in spec.axes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        escape_into(&mut out, axis.name());
        out.push_str(", \"values\": [");
        for v in 0..axis.len() {
            if v > 0 {
                out.push_str(", ");
            }
            escape_into(&mut out, &axis.label(v));
        }
        out.push_str("]}");
    }
    out.push_str("],\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write_point(&mut out, p);
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn write_point(out: &mut String, p: &SweepPoint) {
    use std::fmt::Write as _;
    let _ = write!(out, "    {{\"flat\": {}, \"params\": {{", p.flat);
    for (i, (name, label)) in p.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        escape_into(out, name);
        out.push_str(": ");
        escape_into(out, label);
    }
    let _ = write!(out, "}}, \"solver\": ");
    escape_into(out, p.solver);
    let _ = write!(
        out,
        ", \"states\": {}, \"nnz\": {}, \"iterations\": {}, \"residual\": ",
        p.states, p.nnz, p.iterations
    );
    write_f64(out, p.residual);
    out.push_str(", \"ber\": ");
    write_f64(out, p.ber);
    out.push_str(", \"ber_discrete\": ");
    write_f64(out, p.ber_discrete);
    out.push_str(", \"mtbs\": ");
    write_f64(out, p.mtbs);
    let _ = write!(out, ", \"warm_started\": {}}}", p.warm_started);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepAxis;
    use crate::{run, SweepSpec};
    use stochcdr::{CdrConfig, SolverChoice};
    use stochcdr_obs::json::Json;

    fn base() -> CdrConfig {
        CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap()
    }

    #[test]
    fn renders_parseable_json_with_schema_and_points() {
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::CounterLen(vec![2, 4]))
            .solver(SolverChoice::Power)
            .tol(1e-8);
        let sweep = run(&spec).unwrap();
        let text = render(&spec, &sweep.points);
        let doc = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("stochcdr-sweep/1")
        );
        assert_eq!(doc.get("solver").and_then(Json::as_str), Some("power"));
        let points = match doc.get("points") {
            Some(Json::Arr(v)) => v,
            other => panic!("points not an array: {other:?}"),
        };
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].get("flat").and_then(Json::as_f64), Some(0.0));
        assert!(points[0].get("ber").and_then(Json::as_f64).is_some());
        assert!(points[1].get("params").is_some());
        // Advisory timings must NOT appear in the deterministic output.
        assert!(!text.contains("secs"), "timings leaked into JSON");
    }
}
