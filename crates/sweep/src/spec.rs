//! Declarative sweep specifications: axes × base configuration.

use stochcdr::{CdrConfig, CdrError, FilterKind, Result, SolverChoice};
use stochcdr_noise::jitter::{DriftJitterSpec, WhiteJitterSpec};

/// One swept parameter and the values it takes.
///
/// Each axis names the configuration knob it perturbs; everything else is
/// inherited from the sweep's base configuration. Every derived point is
/// re-validated through [`CdrConfig::builder`]'s `build`, so invalid
/// combinations (e.g. a counter length below the filter's minimum) surface
/// as per-sweep errors instead of panics deep in assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// White-jitter σ in UI (replaces `white.sigma_ui`, keeping the base
    /// spec's deterministic-jitter and tail-truncation settings).
    SigmaNw(Vec<f64>),
    /// Reference-clock frequency offset in ppm (replaces the drift mean,
    /// keeping the base spec's deviation magnitude and shape). This is the
    /// cache-friendly axis: only the `n_r` pmf factor is rebuilt.
    DriftPpm(Vec<f64>),
    /// Phase-grid refinement (bins per VCO phase step).
    Refinement(Vec<usize>),
    /// Loop-filter length parameter.
    CounterLen(Vec<usize>),
    /// Phase-detector dead zone in grid bins.
    DeadZone(Vec<usize>),
    /// Loop-filter circuit.
    Filter(Vec<FilterKind>),
    /// Stationary solver (overrides the sweep-level choice at this point).
    Solver(Vec<SolverChoice>),
}

impl SweepAxis {
    /// Stable axis name used in JSON output and CLI `--axes` strings.
    pub fn name(&self) -> &'static str {
        match self {
            SweepAxis::SigmaNw(_) => "sigma-nw",
            SweepAxis::DriftPpm(_) => "drift-ppm",
            SweepAxis::Refinement(_) => "refinement",
            SweepAxis::CounterLen(_) => "counter",
            SweepAxis::DeadZone(_) => "dead-zone",
            SweepAxis::Filter(_) => "filter",
            SweepAxis::Solver(_) => "solver",
        }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::SigmaNw(v) => v.len(),
            SweepAxis::DriftPpm(v) => v.len(),
            SweepAxis::Refinement(v) => v.len(),
            SweepAxis::CounterLen(v) => v.len(),
            SweepAxis::DeadZone(v) => v.len(),
            SweepAxis::Filter(v) => v.len(),
            SweepAxis::Solver(v) => v.len(),
        }
    }

    /// True when the axis has no values (the spec rejects such axes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Human/JSON label of the `i`-th value.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn label(&self, i: usize) -> String {
        match self {
            SweepAxis::SigmaNw(v) => format!("{:e}", v[i]),
            SweepAxis::DriftPpm(v) => format!("{:e}", v[i]),
            SweepAxis::Refinement(v) => v[i].to_string(),
            SweepAxis::CounterLen(v) => v[i].to_string(),
            SweepAxis::DeadZone(v) => v[i].to_string(),
            SweepAxis::Filter(v) => match v[i] {
                FilterKind::OverflowCounter => "overflow".into(),
                FilterKind::ConsecutiveDetector => "consecutive".into(),
            },
            SweepAxis::Solver(v) => v[i].cli_name().into(),
        }
    }
}

/// A full sweep: base configuration, axes (outer product, first axis
/// slowest-varying), solver choice, and solve policy.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Configuration every point derives from.
    pub base: CdrConfig,
    /// Swept parameters; the grid is their Cartesian product. Empty means
    /// a single point (the base configuration itself).
    pub axes: Vec<SweepAxis>,
    /// Stationary solver for every point (a [`SweepAxis::Solver`] axis
    /// overrides it per point).
    pub solver: SolverChoice,
    /// Residual tolerance passed to the solver.
    pub tol: f64,
    /// Seed each solve from the nearest previously completed grid
    /// neighbor's stationary distribution (within fixed chunks, so results
    /// stay independent of the thread count).
    pub warm_start: bool,
}

impl SweepSpec {
    /// A single-point sweep of `base` with the default solver policy
    /// (multigrid V-cycles at [`stochcdr::DEFAULT_TOL`], warm starts on).
    pub fn new(base: CdrConfig) -> Self {
        SweepSpec {
            base,
            axes: Vec::new(),
            solver: SolverChoice::Multigrid,
            tol: stochcdr::analysis::DEFAULT_TOL,
            warm_start: true,
        }
    }

    /// Appends an axis (first added varies slowest).
    #[must_use]
    pub fn axis(mut self, axis: SweepAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Sets the solver used at every point.
    #[must_use]
    pub fn solver(mut self, choice: SolverChoice) -> Self {
        self.solver = choice;
        self
    }

    /// Sets the residual tolerance.
    #[must_use]
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Enables/disables warm-started solves.
    #[must_use]
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Total grid points (product of axis lengths; 1 with no axes).
    pub fn points(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError::Config`] for an empty axis, a duplicated axis
    /// name, or a non-positive tolerance.
    pub fn validate(&self) -> Result<()> {
        if self.tol.is_nan() || self.tol <= 0.0 {
            return Err(CdrError::Config(format!(
                "sweep tolerance must be positive, got {}",
                self.tol
            )));
        }
        let mut seen: Vec<&'static str> = Vec::new();
        for axis in &self.axes {
            if axis.is_empty() {
                return Err(CdrError::Config(format!(
                    "sweep axis '{}' has no values",
                    axis.name()
                )));
            }
            if seen.contains(&axis.name()) {
                return Err(CdrError::Config(format!(
                    "sweep axis '{}' appears twice",
                    axis.name()
                )));
            }
            seen.push(axis.name());
        }
        Ok(())
    }

    /// Decomposes a flat grid index (grid order: first axis slowest) into
    /// per-axis indices.
    ///
    /// # Panics
    ///
    /// Panics when `flat >= self.points()`.
    pub fn index_of(&self, flat: usize) -> Vec<usize> {
        assert!(flat < self.points(), "flat index {flat} out of range");
        let mut index = vec![0usize; self.axes.len()];
        let mut rem = flat;
        for (slot, axis) in index.iter_mut().zip(&self.axes).rev() {
            *slot = rem % axis.len();
            rem /= axis.len();
        }
        index
    }

    /// Axis-name/value-label pairs for a grid point, in axis order.
    ///
    /// # Panics
    ///
    /// Panics when `index` does not match the axes.
    pub fn params_at(&self, index: &[usize]) -> Vec<(String, String)> {
        assert_eq!(index.len(), self.axes.len(), "index rank mismatch");
        self.axes
            .iter()
            .zip(index)
            .map(|(axis, &i)| (axis.name().to_string(), axis.label(i)))
            .collect()
    }

    /// Materializes the configuration and solver choice at a grid point,
    /// re-running full builder validation.
    ///
    /// # Errors
    ///
    /// Returns [`CdrError::Config`] when the derived point is invalid
    /// (e.g. an axis value below a structural minimum).
    ///
    /// # Panics
    ///
    /// Panics when `index` does not match the axes.
    pub fn resolve(&self, index: &[usize]) -> Result<(CdrConfig, SolverChoice)> {
        assert_eq!(index.len(), self.axes.len(), "index rank mismatch");
        let mut builder = self.base.to_builder();
        let mut choice = self.solver;
        for (axis, &i) in self.axes.iter().zip(index) {
            builder = match axis {
                SweepAxis::SigmaNw(v) => builder.white(WhiteJitterSpec {
                    sigma_ui: v[i],
                    ..self.base.white
                }),
                SweepAxis::DriftPpm(v) => {
                    builder.drift_spec(DriftJitterSpec::from_frequency_offset_ppm(
                        v[i],
                        self.base.drift.max_dev_ui,
                        self.base.drift.shape,
                    ))
                }
                SweepAxis::Refinement(v) => builder.grid_refinement(v[i]),
                SweepAxis::CounterLen(v) => builder.counter_len(v[i]),
                SweepAxis::DeadZone(v) => builder.dead_zone_bins(v[i]),
                SweepAxis::Filter(v) => builder.filter_kind(v[i]),
                SweepAxis::Solver(v) => {
                    choice = v[i];
                    builder
                }
            };
        }
        Ok((builder.build()?, choice))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CdrConfig {
        CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap()
    }

    #[test]
    fn grid_order_is_row_major_first_axis_slowest() {
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::CounterLen(vec![2, 4, 6]))
            .axis(SweepAxis::DeadZone(vec![0, 1]));
        assert_eq!(spec.points(), 6);
        assert_eq!(spec.index_of(0), vec![0, 0]);
        assert_eq!(spec.index_of(1), vec![0, 1]);
        assert_eq!(spec.index_of(2), vec![1, 0]);
        assert_eq!(spec.index_of(5), vec![2, 1]);
        let params = spec.params_at(&[2, 1]);
        assert_eq!(params[0], ("counter".to_string(), "6".to_string()));
        assert_eq!(params[1], ("dead-zone".to_string(), "1".to_string()));
    }

    #[test]
    fn resolve_applies_each_axis() {
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::DriftPpm(vec![100.0, 200.0]))
            .axis(SweepAxis::Solver(vec![
                SolverChoice::Power,
                SolverChoice::GaussSeidel,
            ]));
        let (cfg, choice) = spec.resolve(&[1, 0]).unwrap();
        assert!((cfg.drift.mean_ui - 2e-4).abs() < 1e-18);
        assert_eq!(cfg.drift.max_dev_ui, spec.base.drift.max_dev_ui);
        assert_eq!(choice, SolverChoice::Power);
        let (_, choice) = spec.resolve(&[0, 1]).unwrap();
        assert_eq!(choice, SolverChoice::GaussSeidel);
    }

    #[test]
    fn sigma_axis_preserves_other_white_fields() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::SigmaNw(vec![0.05]));
        let (cfg, _) = spec.resolve(&[0]).unwrap();
        assert_eq!(cfg.white.sigma_ui, 0.05);
        assert_eq!(cfg.white.dj_ui, spec.base.white.dj_ui);
    }

    #[test]
    fn validation_rejects_empty_and_duplicate_axes() {
        let spec = SweepSpec::new(base()).axis(SweepAxis::SigmaNw(vec![]));
        assert!(spec.validate().is_err());
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::CounterLen(vec![2]))
            .axis(SweepAxis::CounterLen(vec![4]));
        assert!(spec.validate().is_err());
        assert!(SweepSpec::new(base()).tol(0.0).validate().is_err());
    }

    #[test]
    fn invalid_point_surfaces_as_config_error() {
        // counter length 1 is below the overflow counter's minimum of 2 —
        // the per-point builder re-validation catches it.
        let spec = SweepSpec::new(base()).axis(SweepAxis::CounterLen(vec![1]));
        assert!(matches!(spec.resolve(&[0]), Err(CdrError::Config(_))));
    }

    #[test]
    fn no_axes_means_one_point() {
        let spec = SweepSpec::new(base());
        assert_eq!(spec.points(), 1);
        assert_eq!(spec.index_of(0), Vec::<usize>::new());
        let (cfg, _) = spec.resolve(&[]).unwrap();
        assert_eq!(cfg, spec.base);
    }
}
