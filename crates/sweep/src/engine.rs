//! Parallel sweep execution with factor caching and warm-started solves.
//!
//! # Determinism contract
//!
//! The engine extends the PR 2 contract to sweeps: for a fixed spec, the
//! returned points (every float included) are **bit-identical for any
//! thread count**. Three mechanisms make that true:
//!
//! * Points are partitioned into fixed chunks of [`WARM_CHUNK`]
//!   consecutive grid indices. Chunks are distributed over `linalg::par`
//!   workers with [`stochcdr_linalg::par::map_tasks`], which returns
//!   results in chunk (= grid) order regardless of which worker ran what.
//! * Warm starting never crosses a chunk boundary: the first point of a
//!   chunk always solves cold, and later points seed from their immediate
//!   predecessor *within the chunk*. The seed is therefore a pure function
//!   of the grid coordinates, not of scheduling.
//! * Each point's assembly, solve, and analysis run sequentially inside
//!   one worker, using the same deterministic kernels as a lone run.
//!
//! The shared [`FactorCache`] does not break the contract: a cache hit
//! returns the same bits a rebuild would produce (factors are themselves
//! deterministic), so scheduling only affects *which* point pays the
//! build cost, never the values.

use std::time::Instant;

use stochcdr::cycle_slip::mean_time_between_slips;
use stochcdr::{CdrAnalysis, CdrChain, CdrModel, Result};
use stochcdr_fsm::{CacheStats, FactorCache};
use stochcdr_linalg::par;
use stochcdr_markov::stationary::StationarySolver;
use stochcdr_obs as obs;

use crate::spec::SweepSpec;
use stochcdr::AssemblyFactors;

/// Number of consecutive grid points per warm-start chain. Also the unit
/// of parallel work distribution. Fixed (not thread-count dependent) so
/// warm-start seeding is deterministic.
pub const WARM_CHUNK: usize = 8;

/// Per-point context handed to [`run_map`] extractors.
#[derive(Debug, Clone)]
pub struct PointCtx {
    /// Flat grid index (grid order: first axis slowest).
    pub flat: usize,
    /// Per-axis value indices.
    pub index: Vec<usize>,
    /// Axis-name/value-label pairs, in axis order.
    pub params: Vec<(String, String)>,
    /// Whether this point's solve was seeded from a neighbor.
    pub warm_started: bool,
    /// Wall-clock seconds spent assembling the chain (advisory: machine-
    /// and cache-state-dependent, excluded from deterministic output).
    pub form_secs: f64,
    /// Wall-clock seconds spent in the stationary solve (advisory).
    pub solve_secs: f64,
}

/// Deterministic per-point results extracted by the default runner.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Flat grid index.
    pub flat: usize,
    /// Per-axis value indices.
    pub index: Vec<usize>,
    /// Axis-name/value-label pairs.
    pub params: Vec<(String, String)>,
    /// Solver that ran at this point.
    pub solver: &'static str,
    /// Chain states after pruning.
    pub states: usize,
    /// Stored TPM transitions.
    pub nnz: usize,
    /// Interpolated bit error rate.
    pub ber: f64,
    /// Discrete (bin-mass) bit error rate.
    pub ber_discrete: f64,
    /// Mean time between cycle slips, in symbol periods.
    pub mtbs: f64,
    /// Solver iterations.
    pub iterations: usize,
    /// Final solve residual.
    pub residual: f64,
    /// Whether the solve was warm-started.
    pub warm_started: bool,
    /// Advisory assembly seconds (not part of the deterministic output).
    pub form_secs: f64,
    /// Advisory solve seconds (not part of the deterministic output).
    pub solve_secs: f64,
}

/// A completed sweep: points in grid order plus cache telemetry.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// Per-point results, in grid order.
    pub points: Vec<SweepPoint>,
    /// Factor-cache statistics accumulated over the sweep.
    pub cache: CacheStats,
}

/// Runs a sweep with a fresh [`FactorCache`], extracting the standard
/// [`SweepPoint`] metrics.
///
/// # Errors
///
/// Returns the first error in grid order: an invalid derived
/// configuration, a failed assembly, or a solver failure.
pub fn run(spec: &SweepSpec) -> Result<SweepRun> {
    let cache = FactorCache::new();
    let points = run_with(spec, &cache)?;
    Ok(SweepRun {
        points,
        cache: cache.stats(),
    })
}

/// [`run`] against a caller-owned cache (reusable across sweeps).
///
/// # Errors
///
/// Same as [`run`].
pub fn run_with(spec: &SweepSpec, cache: &FactorCache) -> Result<Vec<SweepPoint>> {
    run_map(spec, cache, &|ctx, chain, analysis| {
        let mtbs = mean_time_between_slips(chain, &analysis.stationary)?;
        Ok(SweepPoint {
            flat: ctx.flat,
            index: ctx.index.clone(),
            params: ctx.params.clone(),
            solver: analysis.solver_name,
            states: chain.state_count(),
            nnz: chain.nnz(),
            ber: analysis.ber,
            ber_discrete: analysis.ber_discrete,
            mtbs,
            iterations: analysis.iterations,
            residual: analysis.residual,
            warm_started: ctx.warm_started,
            form_secs: ctx.form_secs,
            solve_secs: ctx.solve_secs,
        })
    })
}

/// Core engine: runs every grid point and maps `(ctx, chain, analysis)`
/// through `extract`, returning results in grid order.
///
/// Figure/table renderers use this to pull exactly the quantities they
/// print (e.g. a φ-density panel) while sharing the cache, warm-start,
/// and determinism machinery.
///
/// # Errors
///
/// Returns the first error in grid order; later points may still have
/// been computed (and their factors cached) but are discarded.
pub fn run_map<T, F>(spec: &SweepSpec, cache: &FactorCache, extract: &F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&PointCtx, &CdrChain, &CdrAnalysis) -> Result<T> + Sync,
{
    spec.validate()?;
    let total = spec.points();
    let _span = obs::span("sweep.run");
    let chunks = total.div_ceil(WARM_CHUNK);
    // Shared across workers: all-atomic, so parallel chunks tick one
    // heartbeat and a single thread per interval emits the progress
    // event. Inert (one branch per point) unless armed via the CLI.
    let heartbeat = obs::Heartbeat::new("sweep");
    // One task per warm chunk; map_tasks returns them in chunk order and
    // its worker scheduling never leaks into the values (see module docs).
    let per_chunk: Vec<Result<Vec<T>>> = par::map_tasks(chunks, |k| {
        let lo = k * WARM_CHUNK;
        let hi = ((k + 1) * WARM_CHUNK).min(total);
        let mut out = Vec::with_capacity(hi - lo);
        let mut prev_eta: Option<Vec<f64>> = None;
        for flat in lo..hi {
            // Stop at the chunk's first failure: within a chunk, grid
            // order and execution order coincide, so the error the caller
            // sees is the earliest one in grid order.
            let (value, eta) = run_point(spec, cache, flat, prev_eta.take(), extract)?;
            out.push(value);
            prev_eta = Some(eta);
            heartbeat.tick_unit(total as u64);
        }
        Ok(out)
    });
    let mut results = Vec::with_capacity(total);
    for chunk in per_chunk {
        results.extend(chunk?);
    }
    obs::counter("sweep.runs", 1);
    Ok(results)
}

/// Assembles, solves, and analyzes one grid point; returns the extracted
/// value and the stationary distribution (the next point's warm seed).
fn run_point<T, F>(
    spec: &SweepSpec,
    cache: &FactorCache,
    flat: usize,
    warm: Option<Vec<f64>>,
    extract: &F,
) -> Result<(T, Vec<f64>)>
where
    F: Fn(&PointCtx, &CdrChain, &CdrAnalysis) -> Result<T> + Sync,
{
    let _span = obs::span("sweep.point");
    let index = spec.index_of(flat);
    let (config, choice) = spec.resolve(&index)?;

    let form_start = Instant::now();
    let factors = AssemblyFactors::cached(&config, cache);
    let chain = CdrModel::new(config).build_chain_with(&factors)?;
    let parts = if choice.is_multigrid() {
        chain.phase_hierarchy_cached(cache)
    } else {
        Vec::new()
    };
    let form_secs = form_start.elapsed().as_secs_f64();

    // A warm seed is only valid when the neighbor's state space matches
    // (axes like refinement change it). Direct solvers ignore the seed.
    let init = warm.filter(|eta| spec.warm_start && eta.len() == chain.state_count());
    let warm_started = init.is_some();

    // Multigrid points fetch the symbolic lumping plans from the cache
    // too (`mg.plan` kind): points that only move transition values share
    // one plan stack, so their solves skip the symbolic setup entirely.
    let (result, solve_time, solver_name, mg_phases) = if choice.is_multigrid() {
        let schedule = choice.mg_schedule().expect("multigrid choice");
        let plans = chain.mg_plans_cached(cache, &parts, schedule);
        let solver = chain.multigrid_solver(choice, spec.tol, parts, Some(plans));
        let solve_start = Instant::now();
        let (result, stats) = solver.solve_with_stats(chain.tpm(), init.as_deref())?;
        (
            result,
            solve_start.elapsed(),
            solver.name(),
            Some(stats.phases),
        )
    } else {
        let solver = chain.solver_from_hierarchy(choice, spec.tol, parts);
        let solve_start = Instant::now();
        let result = solver.solve(chain.tpm(), init.as_deref())?;
        (result, solve_start.elapsed(), solver.name(), None)
    };
    let iterations = result.iterations();
    let residual = result.residual();
    let mut analysis = chain.analysis_from_stationary(
        result.distribution,
        iterations,
        residual,
        solve_time,
        solver_name,
    );
    analysis.mg_phases = mg_phases;

    obs::counter("sweep.points", 1);
    obs::histogram("sweep.point.form_ns", form_secs * 1e9);
    obs::histogram("sweep.point.solve_ns", solve_time.as_nanos() as f64);
    if obs::enabled() {
        obs::event(
            "sweep.point",
            &[
                ("flat", (flat as u64).into()),
                ("states", (chain.state_count() as u64).into()),
                ("iterations", (iterations as u64).into()),
                ("warm", warm_started.into()),
            ],
        );
    }

    let params = spec.params_at(&index);
    let ctx = PointCtx {
        flat,
        index,
        params,
        warm_started,
        form_secs,
        solve_secs: solve_time.as_secs_f64(),
    };
    let value = extract(&ctx, &chain, &analysis)?;
    Ok((value, analysis.stationary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepAxis;
    use stochcdr::{CdrConfig, SolverChoice};

    fn base() -> CdrConfig {
        CdrConfig::builder()
            .phases(4)
            .grid_refinement(2)
            .counter_len(4)
            .white_sigma_ui(0.08)
            .drift(2e-2, 8e-2)
            .build()
            .unwrap()
    }

    #[test]
    fn single_point_matches_direct_analysis() {
        let spec = SweepSpec::new(base())
            .solver(SolverChoice::Power)
            .tol(1e-10);
        let sweep = run(&spec).unwrap();
        assert_eq!(sweep.points.len(), 1);
        let p = &sweep.points[0];

        let chain = CdrModel::new(base()).build_chain().unwrap();
        let direct = chain.analyze_with_tol(SolverChoice::Power, 1e-10).unwrap();
        assert_eq!(p.ber.to_bits(), direct.ber.to_bits());
        assert_eq!(p.ber_discrete.to_bits(), direct.ber_discrete.to_bits());
        assert_eq!(p.iterations, direct.iterations);
        assert_eq!(p.residual.to_bits(), direct.residual.to_bits());
        assert_eq!(p.states, chain.state_count());
        assert_eq!(p.nnz, chain.nnz());
        assert!(!p.warm_started, "single cold point");
        let mtbs = mean_time_between_slips(&chain, &direct.stationary).unwrap();
        assert_eq!(p.mtbs.to_bits(), mtbs.to_bits());
    }

    #[test]
    fn grid_points_match_hand_loop() {
        let sigmas = [0.06, 0.08, 0.10];
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::SigmaNw(sigmas.to_vec()))
            .solver(SolverChoice::GaussSeidel)
            .tol(1e-10)
            .warm_start(false);
        let sweep = run(&spec).unwrap();
        assert_eq!(sweep.points.len(), 3);
        for (p, &sigma) in sweep.points.iter().zip(&sigmas) {
            let cfg = {
                let mut b = base().to_builder();
                b = b.white(stochcdr_noise::jitter::WhiteJitterSpec {
                    sigma_ui: sigma,
                    ..base().white
                });
                b.build().unwrap()
            };
            let chain = CdrModel::new(cfg).build_chain().unwrap();
            let direct = chain
                .analyze_with_tol(SolverChoice::GaussSeidel, 1e-10)
                .unwrap();
            assert_eq!(p.ber.to_bits(), direct.ber.to_bits(), "sigma {sigma}");
            assert_eq!(p.iterations, direct.iterations, "cold iterations match");
        }
    }

    #[test]
    fn warm_start_agrees_with_cold_to_tolerance() {
        let tol = 1e-12;
        let axis = SweepAxis::DriftPpm(vec![100.0, 120.0, 140.0, 160.0]);
        let cold = run(&SweepSpec::new(base())
            .axis(axis.clone())
            .solver(SolverChoice::GaussSeidel)
            .tol(tol)
            .warm_start(false))
        .unwrap();
        let warm = run(&SweepSpec::new(base())
            .axis(axis)
            .solver(SolverChoice::GaussSeidel)
            .tol(tol)
            .warm_start(true))
        .unwrap();
        assert!(!cold.points[1].warm_started);
        assert!(
            warm.points[1].warm_started,
            "later points in a chunk warm-start"
        );
        for (c, w) in cold.points.iter().zip(&warm.points) {
            // Both solves converged to the same stationary distribution up
            // to the residual tolerance; BER is a bounded functional of η.
            assert!(
                (c.ber - w.ber).abs() <= 1e-6 * c.ber.abs().max(1e-300) + 1e4 * tol,
                "warm/cold BER mismatch: {} vs {}",
                c.ber,
                w.ber
            );
            assert!(c.residual <= tol && w.residual <= tol);
        }
        // Warm starts may not help tiny systems much, but they must never
        // change which points exist or their labels.
        assert_eq!(cold.points.len(), warm.points.len());
    }

    #[test]
    fn refinement_axis_disables_warm_start_across_sizes() {
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::Refinement(vec![2, 4]))
            .solver(SolverChoice::Power)
            .tol(1e-8)
            .warm_start(true);
        let sweep = run(&spec).unwrap();
        assert!(!sweep.points[0].warm_started);
        assert!(
            !sweep.points[1].warm_started,
            "state-count change must fall back to cold"
        );
        assert_ne!(sweep.points[0].states, sweep.points[1].states);
    }

    #[test]
    fn error_reported_in_grid_order() {
        // Point 1 (counter 1) is invalid; the engine must surface it even
        // though point 0 and 2 are fine.
        let spec = SweepSpec::new(base()).axis(SweepAxis::CounterLen(vec![4, 1, 6]));
        let err = run(&spec).unwrap_err();
        assert!(matches!(err, stochcdr::CdrError::Config(_)), "got {err:?}");
    }

    #[test]
    fn drift_sweep_reuses_all_but_the_drift_factor() {
        let spec = SweepSpec::new(base())
            .axis(SweepAxis::DriftPpm(vec![100.0, 110.0, 120.0, 130.0]))
            .solver(SolverChoice::Power)
            .tol(1e-8);
        let sweep = run(&spec).unwrap();
        let stats = &sweep.cache;
        // Cold factors: one miss each for the six non-drift kinds; the
        // drift axis misses once per point.
        assert_eq!(stats.by_kind["acc.nr"].misses, 4);
        for kind in [
            "data.branches",
            "pd.nw",
            "pd.decisions",
            "filter.table",
            "row.skeleton",
            "wrap.skeleton",
        ] {
            assert_eq!(stats.by_kind[kind].misses, 1, "kind {kind}");
            assert_eq!(stats.by_kind[kind].hits, 3, "kind {kind}");
        }
    }
}
