//! Sweep acceptance tests: thread-count determinism, cache-invalidation
//! accounting (cross-checked against the obs counter stream), and the
//! warm-start policy.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use stochcdr::{CdrConfig, SolverChoice};
use stochcdr_linalg::par;
use stochcdr_obs as obs;
use stochcdr_obs::{Record, Sink};
use stochcdr_sweep::{render, run, run_with, FactorCache, SweepAxis, SweepSpec};

/// Serializes tests that touch the process-wide thread override or the
/// process-wide obs sink.
fn global_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn base() -> CdrConfig {
    CdrConfig::builder()
        .phases(4)
        .grid_refinement(2)
        .counter_len(4)
        .white_sigma_ui(0.08)
        .drift(2e-2, 8e-2)
        .build()
        .unwrap()
}

/// 12 points: crosses a WARM_CHUNK (8) boundary so both the warm-chain
/// and the chunk-parallel paths are exercised.
fn drift_spec() -> SweepSpec {
    let ppm: Vec<f64> = (0..12).map(|i| 2.0e4 + 250.0 * i as f64).collect();
    SweepSpec::new(base())
        .axis(SweepAxis::DriftPpm(ppm))
        .solver(SolverChoice::Multigrid)
        .tol(1e-11)
}

#[test]
fn sweep_json_is_bitwise_identical_across_thread_counts() {
    let _g = global_lock().lock().unwrap();
    let spec = drift_spec();
    let render_at = |t: usize| {
        par::set_threads(Some(t));
        let out = run(&spec).map(|s| render(&spec, &s.points));
        par::set_threads(None);
        out.unwrap()
    };
    let one = render_at(1);
    let four = render_at(4);
    assert_eq!(one, four, "sweep JSON differs between 1 and 4 threads");
    // And the cache (shared, scheduling-dependent hit attribution) must
    // not leak into the deterministic output either.
    assert!(!one.contains("cache"), "cache telemetry leaked into JSON");
}

/// Aggregates obs counters by name.
#[derive(Default)]
struct CounterSink {
    totals: Arc<Mutex<BTreeMap<String, u64>>>,
}

impl Sink for CounterSink {
    fn record(&mut self, _at_nanos: u64, record: &Record<'_>) {
        if let Record::Counter { name, delta } = record {
            *self
                .totals
                .lock()
                .unwrap()
                .entry((*name).to_string())
                .or_insert(0) += delta;
        }
    }
}

#[test]
fn cache_counters_cross_check_with_obs_stream() {
    let _g = global_lock().lock().unwrap();
    let totals = Arc::new(Mutex::new(BTreeMap::new()));
    obs::install(Box::new(CounterSink {
        totals: Arc::clone(&totals),
    }));

    let spec = drift_spec();
    let cache = FactorCache::new();
    let points = run_with(&spec, &cache).unwrap();
    let stats = cache.stats();
    obs::uninstall();

    let totals = totals.lock().unwrap();
    let get = |k: &str| totals.get(k).copied().unwrap_or(0);

    // The programmatic stats and the counter stream are two views of the
    // same accesses; they must agree exactly.
    assert_eq!(get("fsm.factor_cache.hit"), stats.hits);
    assert_eq!(get("fsm.factor_cache.miss"), stats.misses);
    assert_eq!(get("sweep.points"), points.len() as u64);
    assert_eq!(get("sweep.runs"), 1);

    // Per-kind counters decompose the totals.
    let hit_by_kind: u64 = stats.by_kind.values().map(|k| k.hits).sum();
    let miss_by_kind: u64 = stats.by_kind.values().map(|k| k.misses).sum();
    assert_eq!(hit_by_kind, stats.hits);
    assert_eq!(miss_by_kind, stats.misses);
    for (kind, ks) in &stats.by_kind {
        assert_eq!(
            get(&format!("fsm.factor_cache.hit.{kind}")),
            ks.hits,
            "kind {kind}"
        );
        assert_eq!(
            get(&format!("fsm.factor_cache.miss.{kind}")),
            ks.misses,
            "kind {kind}"
        );
    }

    // Invalidation: the drift axis must rebuild only the drift pmf.
    assert_eq!(stats.by_kind["acc.nr"].misses, spec.points() as u64);
    assert_eq!(stats.by_kind["row.skeleton"].misses, 1);
}

#[test]
fn drift_sweep_factor_hit_rate_exceeds_90_percent() {
    // The PR's acceptance shape at test scale: a 64-point drift-ppm sweep
    // (refinement 8 instead of 32 to stay fast in debug builds) where the
    // drift axis invalidates only the n_r factor, so the factor cache—
    // including the per-level multigrid hierarchy—absorbs ≥ 90% of
    // accesses.
    let base = CdrConfig::builder()
        .phases(16)
        .grid_refinement(8)
        .counter_len(8)
        .white_sigma_ui(0.05)
        .drift(2e-3, 9e-3)
        .build()
        .unwrap();
    let ppm: Vec<f64> = (0..64).map(|i| 2000.0 + 10.0 * i as f64).collect();
    let spec = SweepSpec::new(base)
        .axis(SweepAxis::DriftPpm(ppm))
        .solver(SolverChoice::Multigrid)
        .tol(1e-10);
    let sweep = run(&spec).unwrap();
    let stats = &sweep.cache;
    assert_eq!(sweep.points.len(), 64);
    assert!(
        stats.hit_rate() >= 0.90,
        "hit rate {:.3} below 0.90 ({} hits / {} accesses)\nby kind: {:#?}",
        stats.hit_rate(),
        stats.hits,
        stats.accesses(),
        stats.by_kind
    );
    // The hierarchy is part of the cached state: only one cold build.
    let mg = &stats.by_kind["mg.level"];
    assert!(mg.hits > 0, "hierarchy never reused");
    assert!(mg.misses <= 16, "hierarchy rebuilt per point: {mg:?}");
}

#[test]
fn warm_start_matches_cold_results_within_tolerance() {
    let tol = 1e-12;
    let mk = |warm: bool| {
        let spec = drift_spec().tol(tol).warm_start(warm);
        run(&spec).unwrap().points
    };
    let cold = mk(false);
    let warm = mk(true);
    assert_eq!(cold.len(), warm.len());
    let mut warm_used = 0;
    for (c, w) in cold.iter().zip(&warm) {
        assert!(c.residual <= tol && w.residual <= tol);
        let scale = c.ber.abs().max(w.ber.abs()).max(1e-300);
        assert!(
            (c.ber - w.ber).abs() / scale <= 1e-4 || (c.ber - w.ber).abs() <= 1e3 * tol,
            "point {}: cold BER {} vs warm {}",
            c.flat,
            c.ber,
            w.ber
        );
        warm_used += usize::from(w.warm_started);
    }
    // 12 points in chunks of 8: points 1..8 and 9..12 warm-start.
    assert_eq!(warm_used, 10);
    assert!(cold.iter().all(|p| !p.warm_started));
}
