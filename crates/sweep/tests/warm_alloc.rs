//! Allocation coverage for the sweep engine's warm paths, on the
//! workspace's shared accounting allocator
//! ([`stochcdr_obs::mem::TrackingAlloc`]).
//!
//! Two claims, measured on the main thread with obs off and a serial
//! pool so the counts are a pure function of the work:
//!
//! 1. Re-running a sweep against a warm [`FactorCache`] allocates
//!    strictly less than the cold run — the cached factors (row
//!    skeletons, pmfs, multigrid hierarchy) really are reused, not
//!    rebuilt. (Per-point chain assembly still allocates either way, so
//!    the saving is real but bounded.)
//! 2. Enabling warm-started solves does not add allocations over cold
//!    solves at the same cache state: the warm chain only seeds the
//!    iterate, and warm multigrid cycles run in preallocated buffers.

use stochcdr::{CdrConfig, SolverChoice};
use stochcdr_linalg::par;
use stochcdr_obs::mem;
use stochcdr_sweep::{run_with, FactorCache, SweepAxis, SweepSpec};

#[global_allocator]
static GLOBAL: mem::TrackingAlloc = mem::TrackingAlloc::new();

fn spec(warm_start: bool) -> SweepSpec {
    let base = CdrConfig::builder()
        .phases(4)
        .grid_refinement(2)
        .counter_len(4)
        .white_sigma_ui(0.08)
        .drift(2e-2, 8e-2)
        .build()
        .unwrap();
    let ppm: Vec<f64> = (0..6).map(|i| 2.0e4 + 250.0 * i as f64).collect();
    SweepSpec::new(base)
        .axis(SweepAxis::DriftPpm(ppm))
        .solver(SolverChoice::Multigrid)
        .tol(1e-11)
        .warm_start(warm_start)
}

/// Main-thread allocation count of one `run_with` against `cache`.
fn allocs_of_run(spec: &SweepSpec, cache: &FactorCache) -> u64 {
    let mark = mem::thread_mark();
    let points = run_with(spec, cache).unwrap();
    assert_eq!(points.len(), 6);
    mark.delta().1
}

#[test]
fn warm_cache_and_warm_starts_do_not_inflate_allocations() {
    let _ = stochcdr_obs::uninstall();
    par::set_threads(Some(1));
    assert!(mem::tracking_active(), "tracking allocator not installed");

    let cold_spec = spec(false);
    let cache = FactorCache::new();
    let cold = allocs_of_run(&cold_spec, &cache);
    let misses_cold = cache.stats().misses;
    let cached = allocs_of_run(&cold_spec, &cache);
    assert!(
        cached < cold,
        "warm cache saved nothing: cold run {cold} allocations, cached rerun {cached}"
    );
    // And the saving is the cache's doing: the rerun missed nothing.
    assert_eq!(cache.stats().misses, misses_cold, "cached rerun missed");

    // Same warm cache state for both solve modes: warm-started solves may
    // only save allocations (fewer cycles), never add any.
    let warm_spec = spec(true);
    let warm = allocs_of_run(&warm_spec, &cache);
    assert!(
        warm <= cached,
        "warm-started solves allocated more than cold ones: {warm} vs {cached}"
    );

    par::set_threads(None);
}
