//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `sample_size`, `throughput`,
//! `BenchmarkId`, and `black_box` — backed by a simple wall-clock harness:
//! each benchmark is warmed up, then timed over `sample_size` samples whose
//! iteration count is auto-calibrated, and the median ns/iter is printed.
//! There is no statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Creates a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function` (a `&str` or a [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// The timing context handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Target measurement time per sample batch.
    sample_time: Duration,
    /// Number of samples to collect.
    samples: usize,
    /// Collected per-iteration nanosecond estimates.
    results: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize, sample_time: Duration) -> Self {
        Bencher {
            sample_time,
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f`, storing per-iteration estimates.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that fills
        // roughly one sample window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_time / 4 || iters >= 1 << 20 {
                let per_sample = if elapsed.is_zero() {
                    iters * 4
                } else {
                    let scale = self.sample_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                    ((iters as f64 * scale).ceil() as u64).max(1)
                };
                for _ in 0..self.samples {
                    let start = Instant::now();
                    for _ in 0..per_sample {
                        black_box(f());
                    }
                    let ns = start.elapsed().as_nanos() as f64 / per_sample as f64;
                    self.results.push(ns);
                }
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.results.is_empty() {
            return f64::NAN;
        }
        self.results.sort_by(f64::total_cmp);
        self.results[self.results.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    full_id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    run: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher::new(samples.max(2), Duration::from_millis(30));
    run(&mut b);
    let ns = b.median_ns();
    let mut line = format!("{full_id:<48} time: {:>12}/iter", format_ns(ns));
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if ns > 0.0 {
            let per_sec = count as f64 / (ns * 1e-9);
            line.push_str(&format!("  thrpt: {per_sec:.3e} {unit}/s"));
        }
    }
    println!("{line}");
}

/// Top-level harness state.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            _c: self,
            name,
            samples: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), 10, None, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, self.throughput, |b| f(b));
        self
    }

    /// Times one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut acc = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(black_box(1));
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }
}
