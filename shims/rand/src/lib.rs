//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! exact surface the workspace uses — `Rng::{gen, gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` — backed by
//! xoshiro256** seeded through SplitMix64. It is *not* a cryptographic
//! RNG and makes no cross-version reproducibility promises beyond this
//! workspace's own tests, which only rely on statistical convergence.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly (the argument type of [`Rng::gen_range`]).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Draws uniformly from `[0, span)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the largest multiple of `span`.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return <$t>::sample_standard_from(rng);
                }
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Helper giving every integer type a full-width draw (used by the
/// inclusive-range impl for degenerate full ranges).
trait SampleStandardFrom {
    fn sample_standard_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_full_width {
    ($($t:ty),*) => {$(
        impl SampleStandardFrom for $t {
            fn sample_standard_from<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_full_width!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (same construction the xoshiro authors recommend).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&j));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let u = draw(&mut rng);
        assert!((0.0..1.0).contains(&u));
    }
}
