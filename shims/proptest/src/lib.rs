//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_filter_map`,
//! range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::select`, [`ProptestConfig`], and the `proptest!` /
//! `prop_assert*` macros. Unlike real proptest there is no shrinking and
//! no persisted regression corpus: each case is generated from a
//! deterministic per-test seed, so failures are reproducible run to run.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the generator for a named test: the seed is a hash of the
    /// test name so every test explores a distinct but stable sequence.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }
}

/// A generator of test values.
///
/// `generate` returns `None` when a filter rejects the candidate; the
/// runner retries (up to an internal cap) before giving up.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one candidate value, or `None` on filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values where `f` returns `Some`, unwrapping them.
    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    /// Keeps only values satisfying the predicate.
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.inner.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.inner.gen_range(self.clone()))
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        Some(rng.inner.gen_range(self.clone()))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        Some(rng.inner.gen_range(self.clone()))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Size specification for collection strategies: a fixed length or a
/// half-open/inclusive range of lengths.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy modules mirroring proptest's `prop::` namespace.
pub mod strategies {
    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeRange, Strategy, TestRng};

        /// A `Vec` whose elements come from `element` and whose length is
        /// drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let span = self.size.hi_inclusive - self.size.lo + 1;
                let len = self.size.lo + rng.below(span);
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(self.element.generate(rng)?);
                }
                Some(out)
            }
        }
    }

    pub mod sample {
        //! Sampling strategies.

        use super::super::{Strategy, TestRng};

        /// Chooses uniformly among the given values.
        ///
        /// # Panics
        ///
        /// Panics if `values` is empty.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select needs at least one value");
            Select { values }
        }

        /// See [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> Option<T> {
                Some(self.values[rng.below(self.values.len())].clone())
            }
        }
    }

    pub mod num {
        //! Placeholder for numeric strategy aliases (ranges implement
        //! [`super::super::Strategy`] directly).
        pub use super::super::Strategy;
    }

    pub mod bool {
        //! Boolean strategies.

        use super::super::{Strategy, TestRng};

        /// Uniformly random `bool`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> Option<bool> {
                Some(rng.below(2) == 1)
            }
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use super::strategies::{bool, collection, num, sample};
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Retry budget per case when filters reject candidates.
    pub max_global_rejects: u32,
    _non_exhaustive: PhantomData<()>,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            _non_exhaustive: PhantomData,
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::{prop, Just, ProptestConfig, Strategy, TestRng};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for the supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in 0usize..10, v in prop::collection::vec(-1.0f64..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            // Strategies are built once; each case redraws values.
            let __strategies = ($(&($strat),)+);
            for __case in 0..__config.cases {
                let mut __rejects = 0u32;
                let ($($pat,)+) = loop {
                    match $crate::Strategy::generate(&__strategies, &mut __rng) {
                        Some(v) => break v,
                        None => {
                            __rejects += 1;
                            assert!(
                                __rejects < __config.max_global_rejects,
                                "strategy for `{}` rejected {} candidates in a row",
                                stringify!($name),
                                __rejects
                            );
                        }
                    }
                };
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vec_generate() {
        let mut rng = TestRng::deterministic("t1");
        let s = prop::collection::vec((0usize..5, -1.0f64..1.0), 0..10);
        for _ in 0..100 {
            let v = s.generate(&mut rng).unwrap();
            assert!(v.len() < 10);
            for (i, x) in v {
                assert!(i < 5);
                assert!((-1.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn select_and_filter_map() {
        let mut rng = TestRng::deterministic("t2");
        let s = prop::sample::select(vec![2usize, 3, 5])
            .prop_filter_map("odd only", |v| (v % 2 == 1).then_some(v * 10));
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            if let Some(v) = s.generate(&mut rng) {
                seen.insert(v);
            }
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![30, 50]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro binds multiple strategies and runs the body.
        #[test]
        fn macro_smoke(a in 1usize..4, b in prop::collection::vec(0.0f64..1.0, 2), c in 0u64..10) {
            prop_assert!((1..4).contains(&a));
            prop_assert_eq!(b.len(), 2);
            prop_assert!(c < 10, "c was {}", c);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0i32..100) {
            prop_assert_ne!(x, 1000);
        }
    }
}
