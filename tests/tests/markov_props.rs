//! Property-based cross-validation of the Markov-chain machinery on
//! randomized chains: direct vs iterative stationary solves, the censored-
//! chain identity, aggregation fixed points, and simulation agreement.

use proptest::prelude::*;
use stochcdr_linalg::{vecops, CooMatrix};
use stochcdr_markov::censored::censor;
use stochcdr_markov::lumping::{aggregate, lump_weighted, Partition};
use stochcdr_markov::simulate::{occupancy_tv, ChainSampler};
use stochcdr_markov::stationary::{GaussSeidelSolver, GthSolver, PowerIteration, StationarySolver};
use stochcdr_markov::StochasticMatrix;

/// Random irreducible chain: a weak ring backbone guarantees strong
/// connectivity; random extra edges provide structure.
fn chain_strategy(n: usize) -> impl Strategy<Value = StochasticMatrix> {
    prop::collection::vec((0..n, 0..n, 0.05f64..1.0), n..4 * n).prop_map(move |extra| {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 0.05);
            coo.push(i, i, 0.05);
        }
        for (r, c, v) in extra {
            coo.push(r, c, v);
        }
        let m = coo.to_csr();
        let sums = m.row_sums();
        let factors: Vec<f64> = sums.iter().map(|s| 1.0 / s).collect();
        StochasticMatrix::new(m.scale_rows(&factors)).expect("normalized chain is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All stationary solvers agree on random irreducible chains.
    #[test]
    fn solvers_agree_on_random_chains(p in chain_strategy(18)) {
        let direct = GthSolver::new().solve(&p, None).unwrap().distribution;
        let power = PowerIteration::new(1e-13, 1_000_000).solve(&p, None).unwrap().distribution;
        let gs = GaussSeidelSolver::new(1e-13, 1_000_000).solve(&p, None).unwrap().distribution;
        prop_assert!(vecops::dist1(&direct, &power) < 1e-8);
        prop_assert!(vecops::dist1(&direct, &gs) < 1e-8);
        prop_assert!(p.stationary_residual(&direct) < 1e-10);
    }

    /// Censoring identity: the stationary distribution of the stochastic
    /// complement equals the restricted-and-renormalized fine stationary,
    /// for random chains and random keep sets.
    #[test]
    fn censoring_identity_random(
        p in chain_strategy(14),
        keep_mask in prop::collection::vec(prop::bool::ANY, 14),
    ) {
        let keep: Vec<usize> =
            (0..14).filter(|&i| keep_mask[i] || i == 0).collect(); // non-empty
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let s = censor(&p, &keep).unwrap();
        let eta_s = if s.n() == 1 {
            vec![1.0]
        } else {
            GthSolver::new().solve(&s, None).unwrap().distribution
        };
        let mut restricted: Vec<f64> = keep.iter().map(|&i| eta[i]).collect();
        vecops::normalize_l1(&mut restricted);
        prop_assert!(
            vecops::dist1(&eta_s, &restricted) < 1e-8,
            "identity violated by {}",
            vecops::dist1(&eta_s, &restricted)
        );
    }

    /// Aggregation fixed point: lumping with the exact stationary weights
    /// makes the aggregated stationary the coarse stationary, for ANY
    /// partition.
    #[test]
    fn aggregation_fixed_point_random(
        p in chain_strategy(12),
        labels in prop::collection::vec(0usize..4, 12),
    ) {
        // Make labels contiguous.
        let mut uniq = labels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let relabeled: Vec<usize> =
            labels.iter().map(|l| uniq.binary_search(l).unwrap()).collect();
        let part = Partition::from_labels(relabeled).unwrap();
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let coarse = lump_weighted(&p, &part, &eta).unwrap();
        let eta_c = if coarse.n() == 1 {
            vec![1.0]
        } else {
            GthSolver::new().solve(&coarse, None).unwrap().distribution
        };
        let agg = aggregate(&part, &eta);
        prop_assert!(vecops::dist1(&agg, &eta_c) < 1e-8);
    }

    /// Simulated occupancy converges toward the stationary distribution.
    #[test]
    fn simulation_matches_stationary(p in chain_strategy(10), seed in 0u64..1_000) {
        use rand::SeedableRng;
        let eta = GthSolver::new().solve(&p, None).unwrap().distribution;
        let sampler = ChainSampler::new(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let counts = sampler.occupancy(0, 60_000, &mut rng).unwrap();
        prop_assert!(occupancy_tv(&counts, &eta) < 0.05);
    }
}
