//! Solver cross-validation on CDR chains: every stationary solver must
//! produce the same distribution, and the multigrid hierarchy must respect
//! the aggregation/disaggregation fixed-point property.

use stochcdr::{CdrModel, SolverChoice};
use stochcdr_integration::small_config;
use stochcdr_linalg::vecops;
use stochcdr_markov::lumping::{aggregate, lump_weighted, Partition};
use stochcdr_markov::stationary::{GthSolver, StationarySolver};
use stochcdr_multigrid::GeometricCoarsening;

#[test]
fn all_solvers_produce_the_same_stationary_distribution() {
    let chain = CdrModel::new(small_config()).build_chain().expect("chain");
    let reference = GthSolver::new()
        .solve(chain.tpm(), None)
        .expect("direct")
        .distribution;
    for choice in [
        SolverChoice::Power,
        SolverChoice::Jacobi,
        SolverChoice::GaussSeidel,
        SolverChoice::Multigrid,
        SolverChoice::MultigridW,
    ] {
        let solver = chain.solver_with_tol(choice, 1e-11);
        let result = solver.solve(chain.tpm(), None).expect("solve");
        let d = vecops::dist1(&result.distribution, &reference);
        assert!(d < 1e-7, "{} deviates from GTH by {d:.2e}", solver.name());
    }
}

#[test]
fn multigrid_cycle_counts_beat_one_level_iteration_counts() {
    let chain = CdrModel::new(small_config()).build_chain().expect("chain");
    let mg = chain
        .solver_with_tol(SolverChoice::Multigrid, 1e-10)
        .solve(chain.tpm(), None)
        .expect("mg");
    let pw = chain
        .solver_with_tol(SolverChoice::Power, 1e-10)
        .solve(chain.tpm(), None)
        .expect("power");
    assert!(
        mg.iterations() * 3 < pw.iterations(),
        "multigrid {} cycles vs power {} iterations",
        mg.iterations(),
        pw.iterations()
    );
}

#[test]
fn exact_stationary_is_a_fixed_point_of_aggregation() {
    // The aggregation/disaggregation pair built on the *exact* stationary
    // vector reproduces the aggregated stationary as the coarse stationary
    // — the property that makes the multigrid scheme consistent.
    let chain = CdrModel::new(small_config()).build_chain().expect("chain");
    let eta = GthSolver::new()
        .solve(chain.tpm(), None)
        .expect("direct")
        .distribution;
    let cfg = chain.config();
    let parts = GeometricCoarsening::new(
        vec![cfg.data_model.state_count(), cfg.counter_len, cfg.m_bins()],
        2,
        cfg.m_bins() / 2,
    )
    .levels();
    let part: &Partition = &parts[0];
    let coarse = lump_weighted(chain.tpm(), part, &eta).expect("lump");
    let eta_coarse = GthSolver::new()
        .solve(&coarse, None)
        .expect("coarse solve")
        .distribution;
    let agg = aggregate(part, &eta);
    assert!(
        vecops::dist1(&agg, &eta_coarse) < 1e-8,
        "fixed-point violation: {:.2e}",
        vecops::dist1(&agg, &eta_coarse)
    );
}

#[test]
fn stationary_from_any_start_is_unique() {
    // Irreducible chain: power iteration from wildly different starts
    // converges to the same distribution.
    let chain = CdrModel::new(small_config()).build_chain().expect("chain");
    let n = chain.state_count();
    let solver = chain.solver_with_tol(SolverChoice::GaussSeidel, 1e-11);
    let mut start_a = vec![0.0; n];
    start_a[0] = 1.0;
    let mut start_b = vec![0.0; n];
    start_b[n - 1] = 1.0;
    let a = solver.solve(chain.tpm(), Some(&start_a)).expect("a");
    let b = solver.solve(chain.tpm(), Some(&start_b)).expect("b");
    // Change-based stopping underestimates the error by 1/(1 − rho), so the
    // two runs agree to a looser tolerance than the sweep tolerance; both
    // residuals must still be tiny.
    assert!(a.residual() < 1e-9 && b.residual() < 1e-9);
    assert!(vecops::dist1(&a.distribution, &b.distribution) < 1e-5);
}

#[test]
fn autocorrelation_of_phase_decays() {
    // The recovered-clock phase error decorrelates over the loop time
    // constant; the normalized autocorrelation must decay from 1 toward 0.
    let chain = CdrModel::new(small_config()).build_chain().expect("chain");
    let eta = GthSolver::new()
        .solve(chain.tpm(), None)
        .expect("direct")
        .distribution;
    let phase: Vec<f64> = (0..chain.state_count())
        .map(|s| chain.phase_ui_of(s))
        .collect();
    let rho = stochcdr_markov::functional::autocorrelation(chain.tpm(), &eta, &phase, 200)
        .expect("autocorrelation");
    assert!((rho[0] - 1.0).abs() < 1e-9);
    assert!(
        rho[200].abs() < 0.1,
        "rho(200) = {} should be near 0",
        rho[200]
    );
    // Short-lag correlation is high: the phase moves at most G per symbol.
    assert!(rho[1] > 0.5, "rho(1) = {}", rho[1]);
}
