//! Operator-equivalence properties for the unified solver stack: every
//! [`StationarySolver`] must return the same stationary vector no matter
//! which [`TransitionOp`] backend stores the chain, and the parallel
//! kernels must be bit-identical for every thread count.
//!
//! Two strengths of "the same", per the accumulation-order contract in
//! `stochcdr-linalg`:
//!
//! * CSR and dense store the *same* entries and accumulate each output
//!   element in the same ascending source-index order, so every solver
//!   must agree **bitwise** between them.
//! * [`KroneckerOp`] applies mode by mode, which associates the same
//!   products differently, so it agrees with the materialized chain only
//!   to rounding — but with *itself* it must stay bitwise stable across
//!   thread counts.

use proptest::prelude::*;
use stochcdr::monte_carlo::MonteCarlo;
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_fsm::KroneckerOp;
use stochcdr_linalg::{par, vecops, CooMatrix, CsrMatrix, TransitionOp};
use stochcdr_markov::stationary::{JacobiSolver, PowerIteration, StationarySolver};

/// The paper's Fig.-2 reference architecture (8-phase VCO, overflow
/// counter, SONET-like data) at a grid small enough for dense/GTH runs.
fn fig2_config() -> CdrConfig {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(2)
        .counter_len(4)
        .white_sigma_ui(0.05)
        .drift(1e-2, 6e-2)
        .build()
        .expect("Fig-2 config")
}

#[test]
fn csr_and_dense_backends_bit_identical_through_every_solver() {
    let chain = CdrModel::new(fig2_config()).build_chain().expect("chain");
    let csr: &CsrMatrix = chain.tpm().matrix();
    let dense = csr.to_dense();
    for choice in SolverChoice::ALL {
        let solver = chain.solver_with_tol(choice, 1e-10);
        let a = solver.solve_op(csr, None).expect("CSR backend");
        let b = solver.solve_op(&dense, None).expect("dense backend");
        assert_eq!(
            a.distribution,
            b.distribution,
            "{}: CSR and dense stationary vectors must be bit-identical",
            solver.name()
        );
        assert_eq!(
            a.iterations(),
            b.iterations(),
            "{}: iteration counts",
            solver.name()
        );
    }
}

/// Random irreducible stochastic factor: ring backbone plus self-loops,
/// rows normalized.
fn factor_strategy(n: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec(0.05f64..1.0, n * 2).prop_map(move |w| {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, w[2 * i]);
            coo.push(i, i, w[2 * i + 1]);
        }
        let m = coo.to_csr();
        let sums = m.row_sums();
        let factors: Vec<f64> = sums.iter().map(|s| 1.0 / s).collect();
        m.scale_rows(&factors)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The product-form operator feeds power iteration and weighted
    /// Jacobi without materializing, and agrees with the materialized
    /// chain to rounding (mode-by-mode association differs, so bitwise
    /// equality is not required across these two backends).
    #[test]
    fn kronecker_backend_matches_materialized(
        a in factor_strategy(3),
        b in factor_strategy(4),
        c in factor_strategy(5),
    ) {
        let op = KroneckerOp::new(vec![a, b, c]);
        let mat = op.materialize_csr();
        let n = op.dim();

        // The two products agree to rounding on a generic vector.
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let via_op = op.mul_left(&x);
        let via_mat = TransitionOp::mul_left(&mat, &x);
        for (u, v) in via_op.iter().zip(&via_mat) {
            prop_assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0));
        }

        // Matrix-free stationary solves land on the materialized answer.
        let solvers: [&dyn StationarySolver; 2] = [
            &PowerIteration::new(1e-12, 200_000),
            &JacobiSolver::new(1e-12, 200_000, 0.8),
        ];
        for solver in solvers {
            let free = solver.solve_op(&op, None).expect("matrix-free solve");
            let dense = solver.solve_op(&mat, None).expect("materialized solve");
            prop_assert!(
                vecops::dist1(&free.distribution, &dense.distribution) < 1e-8,
                "{} disagrees between product form and materialized",
                solver.name()
            );
        }
    }

    /// The allocation-free Kronecker kernels — `mul_left_into`,
    /// `mul_right_into`, and the `for_each_in_row` row enumeration the
    /// direct-from-factors lumping path consumes — agree with the
    /// materialized product on four non-uniform factors, and each output
    /// is bit-identical between a 1-thread and a 4-thread pool (the
    /// block-aligned partition preserves the serial accumulation order).
    #[test]
    fn kronecker_kernels_match_materialized_at_any_pool_size(
        a in factor_strategy(3),
        b in factor_strategy(4),
        c in factor_strategy(5),
        d in factor_strategy(2),
    ) {
        let op = KroneckerOp::new(vec![a, b, c, d]);
        let mat = op.materialize_csr();
        let n = op.dim();
        let x: Vec<f64> = (0..n).map(|i| 0.5 + ((i * 13) % 11) as f64).collect();

        let apply = |threads: usize| {
            par::set_threads(Some(threads));
            let mut left = vec![0.0; n];
            let mut right = vec![0.0; n];
            op.mul_left_into(&x, &mut left);
            op.mul_right_into(&x, &mut right);
            par::set_threads(None);
            (left, right)
        };
        let (l1, r1) = apply(1);
        let (l4, r4) = apply(4);
        prop_assert_eq!(&l1, &l4, "mul_left_into must not depend on pool size");
        prop_assert_eq!(&r1, &r4, "mul_right_into must not depend on pool size");

        // Mode-by-mode association differs from the materialized CSR's
        // per-row accumulation, so the cross-backend comparison is to
        // rounding, not bitwise.
        let mut ml = vec![0.0; n];
        let mut mr = vec![0.0; n];
        TransitionOp::mul_left_into(&mat, &x, &mut ml);
        TransitionOp::mul_right_into(&mat, &x, &mut mr);
        for (u, v) in l1.iter().zip(&ml) {
            prop_assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0));
        }
        for (u, v) in r1.iter().zip(&mr) {
            prop_assert!((u - v).abs() <= 1e-12 * v.abs().max(1.0));
        }

        // Row enumeration: same columns in the same ascending order as
        // the materialized CSR row, values to rounding.
        for row in 0..n {
            let mut got: Vec<(usize, f64)> = Vec::new();
            op.for_each_in_row(row, &mut |c, v| got.push((c, v)));
            let want: Vec<(usize, f64)> = mat.row(row).collect();
            prop_assert_eq!(got.len(), want.len(), "row {} nnz", row);
            for (&(gc, gv), &(wc, wv)) in got.iter().zip(&want) {
                prop_assert_eq!(gc, wc, "row {} column order", row);
                prop_assert!((gv - wv).abs() <= 1e-14 * wv.abs().max(1.0));
            }
        }
    }
}

/// One test drives every thread-sensitive code path at 1 and 4 threads
/// and demands bitwise-equal outputs: TPM assembly, SpMV, all stationary
/// solvers, the Kronecker kernels, and sharded Monte Carlo. (Single test
/// on purpose — the pool size is a process-wide knob.)
#[test]
fn one_thread_and_four_threads_are_bit_identical() {
    let run_all = || {
        let chain = CdrModel::new(fig2_config()).build_chain().expect("chain");
        let tpm_csr = chain.tpm().matrix().clone();
        let n = chain.state_count();
        let x: Vec<f64> = (0..n).map(|i| (i + 1) as f64 / n as f64).collect();
        let mut spmv = vec![0.0; n];
        chain.tpm().step_into(&x, &mut spmv);
        let stationaries: Vec<Vec<f64>> = SolverChoice::ALL
            .iter()
            .map(|&c| {
                chain
                    .solver_with_tol(c, 1e-10)
                    .solve(chain.tpm(), None)
                    .expect("solve")
                    .distribution
            })
            .collect();
        let kron = KroneckerOp::new(vec![tpm_csr.clone()]);
        let kron_left = kron.mul_left(&x);
        let kron_right = kron.mul_right(&x);
        let mc = MonteCarlo::new(fig2_config()).run_sharded(20_000, 11, 8);
        (tpm_csr, spmv, stationaries, kron_left, kron_right, mc)
    };

    par::set_threads(Some(1));
    let serial = run_all();
    par::set_threads(Some(4));
    let parallel = run_all();
    par::set_threads(None);

    assert_eq!(
        serial.0, parallel.0,
        "TPM assembly must not depend on thread count"
    );
    assert_eq!(serial.1, parallel.1, "SpMV must not depend on thread count");
    for (i, (a, b)) in serial.2.iter().zip(&parallel.2).enumerate() {
        assert_eq!(
            a,
            b,
            "solver {:?} must not depend on thread count",
            SolverChoice::ALL[i]
        );
    }
    assert_eq!(
        serial.3, parallel.3,
        "Kronecker x·A must not depend on thread count"
    );
    assert_eq!(
        serial.4, parallel.4,
        "Kronecker A·x must not depend on thread count"
    );
    assert_eq!(
        serial.5, parallel.5,
        "sharded Monte Carlo must not depend on thread count"
    );
}
