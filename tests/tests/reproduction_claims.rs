//! The paper's headline claims, encoded as tests at reduced scale so the
//! reproduction cannot silently regress (EXPERIMENTS.md records the
//! full-scale numbers).

use stochcdr::{CdrConfig, CdrModel, SolverChoice};

fn config(refinement: usize, dead_zone: usize) -> CdrConfig {
    CdrConfig::builder()
        .phases(8)
        .grid_refinement(refinement)
        .counter_len(8)
        .dead_zone_bins(dead_zone)
        .white_sigma_ui(if dead_zone > 0 { 0.01 } else { 0.05 })
        .drift(2e-3, if dead_zone > 0 { 2e-3 } else { 8e-3 })
        .build()
        .expect("config")
}

/// "Through the use of a specialized multi-grid method, very large systems
/// can be solved in reasonable time": multigrid cycle counts must be
/// mesh-independent — quadrupling the grid must not grow the cycle count.
#[test]
fn multigrid_cycles_are_mesh_independent() {
    let cycles_at = |refinement: usize| {
        let chain = CdrModel::new(config(refinement, 0))
            .build_chain()
            .expect("chain");
        chain
            .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
            .expect("analysis")
            .iterations
    };
    let small = cycles_at(8);
    let large = cycles_at(32);
    assert!(
        large <= small * 2,
        "multigrid lost mesh independence: {small} cycles at 8, {large} at 32"
    );
}

/// On stiff (dead-zone) chains, one-level iteration counts blow up while
/// multigrid W-cycles stay in the double digits — the reason the paper
/// needs the dedicated solver at all.
#[test]
fn stiff_chains_need_multigrid() {
    let chain = CdrModel::new(config(16, 32)).build_chain().expect("chain");
    let tol = 1e-10;
    let mg = chain
        .solver_with_tol(SolverChoice::MultigridW, tol)
        .solve(chain.tpm(), None)
        .expect("multigrid");
    let pw = chain
        .solver_with_tol(SolverChoice::Power, tol)
        .solve(chain.tpm(), None)
        .expect("power");
    assert!(
        mg.iterations() < 100,
        "W-cycles exploded: {}",
        mg.iterations()
    );
    assert!(
        pw.iterations() > mg.iterations() * 20,
        "stiffness missing: power {} vs multigrid {}",
        pw.iterations(),
        mg.iterations()
    );
}

/// The analysis must resolve BERs far beyond Monte-Carlo reach: the quiet
/// Figure-4 point has BER below 1e-20 (1e-120 at the full figure grid),
/// which no simulation could ever measure, yet solves in a bounded number
/// of cycles.
#[test]
fn resolves_immeasurably_low_ber() {
    let cfg = CdrConfig::builder()
        .phases(8)
        .grid_refinement(8)
        .counter_len(8)
        .white_sigma_ui(0.007)
        .drift(2e-3, 8e-3)
        .build()
        .expect("config");
    let chain = CdrModel::new(cfg).build_chain().expect("chain");
    let a = chain
        .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
        .expect("analysis");
    assert!(a.ber > 0.0 && a.ber < 1e-20, "BER {:.2e}", a.ber);
    assert!(a.iterations < 200);
}

/// Cycle-slip MTBS must respond exponentially to noise (the rare-event
/// scaling that motivates the whole method).
#[test]
fn slip_times_scale_exponentially_with_noise() {
    let mtbs_at = |sigma: f64| {
        let cfg = CdrConfig::builder()
            .phases(8)
            .grid_refinement(8)
            .counter_len(8)
            .white_sigma_ui(sigma)
            .drift(2e-3, 8e-3)
            .build()
            .expect("config");
        let chain = CdrModel::new(cfg).build_chain().expect("chain");
        let a = chain
            .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
            .expect("analysis");
        stochcdr::cycle_slip::mean_time_between_slips(&chain, &a.stationary).expect("mtbs")
    };
    let quiet = mtbs_at(0.05);
    let loud = mtbs_at(0.15);
    assert!(
        quiet > loud * 1e6,
        "MTBS should collapse by many orders: quiet {quiet:.2e} vs loud {loud:.2e}"
    );
}
