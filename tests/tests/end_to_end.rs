//! End-to-end pipeline tests: config → FSM network → Markov chain →
//! stationary solve → BER / densities / slips → Monte-Carlo agreement.

use stochcdr::cycle_slip::mean_time_between_slips;
use stochcdr::monte_carlo::MonteCarlo;
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_integration::small_config;
use stochcdr_linalg::vecops;

#[test]
fn full_pipeline_runs_and_is_consistent() {
    let config = small_config();
    let model = CdrModel::new(config.clone());

    // Both construction paths agree entry-by-entry.
    let fast = model.build_chain().expect("fast path");
    let reference = model.build_chain_via_network().expect("network path");
    assert_eq!(fast.tpm().nnz(), reference.tpm().nnz());
    for (r, c, v) in fast.tpm().matrix().iter() {
        assert!((v - reference.tpm().matrix().get(r, c)).abs() < 1e-12);
    }

    // The chain is a valid, irreducible, aperiodic Markov chain.
    let cls = stochcdr_markov::classify::classify(fast.tpm());
    assert!(cls.is_irreducible());
    assert_eq!(stochcdr_markov::classify::period(fast.tpm()), 1);

    // Stationary analysis produces a distribution with the documented
    // invariants.
    let analysis = fast
        .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
        .expect("analysis");
    assert!((vecops::sum(&analysis.stationary) - 1.0).abs() < 1e-9);
    assert!(vecops::is_nonnegative(&analysis.stationary));
    assert!(fast.tpm().stationary_residual(&analysis.stationary) < 1e-9);
    assert!(analysis.ber > 0.0 && analysis.ber < 0.5);

    // Slip rate exists and is finite.
    let mtbs = mean_time_between_slips(&fast, &analysis.stationary).expect("mtbs");
    assert!(mtbs.is_finite() && mtbs > 1.0);
}

#[test]
fn monte_carlo_agrees_with_analysis_at_high_noise() {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(4)
        .counter_len(4)
        .white_sigma_ui(0.18)
        .drift(4e-3, 1.6e-2)
        .build()
        .expect("config");
    let chain = CdrModel::new(config.clone()).build_chain().expect("chain");
    let analysis = chain
        .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
        .expect("analysis");
    let mc = MonteCarlo::new(config);
    let run = mc.run(400_000, 20260706);
    assert!(run.bit_errors > 500, "need statistics: {}", run.bit_errors);
    let diff = (run.ber - analysis.ber_discrete).abs();
    assert!(
        diff < 4.0 * run.ber_ci95 + 0.05 * analysis.ber_discrete,
        "MC {} ± {} vs analysis {}",
        run.ber,
        run.ber_ci95,
        analysis.ber_discrete
    );
    // Phase-occupancy histogram matches the stationary marginal.
    let tv = mc.validate_against(&chain, &analysis.stationary, 300_000, 7);
    assert!(tv < 0.02, "TV distance {tv}");
}

#[test]
fn counter_length_u_shape_reproduces() {
    // The Figure-5 shape at the calibrated figure geometry (the fast-loop
    // penalty at counter 4 needs the full 128-bin grid to resolve; coarser
    // grids blur it below the C4/C8 gap).
    let ber_of = |counter: usize| {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(16)
            .counter_len(counter)
            .white_sigma_ui(0.05)
            .drift(2e-3, 8e-3)
            .build()
            .expect("config");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        chain
            .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
            .expect("analysis")
            .ber
    };
    let (b4, b8, b16) = (ber_of(4), ber_of(8), ber_of(16));
    assert!(
        b8 * 2.0 < b4,
        "counter 8 ({b8:.2e}) should clearly beat 4 ({b4:.2e})"
    );
    assert!(
        b8 * 2.0 < b16,
        "counter 8 ({b8:.2e}) should clearly beat 16 ({b16:.2e})"
    );
}

#[test]
fn noise_scaling_reproduces_fig4_monotonicity() {
    let ber_of = |sigma: f64| {
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(8)
            .counter_len(8)
            .white_sigma_ui(sigma)
            .drift(2e-3, 8e-3)
            .build()
            .expect("config");
        let chain = CdrModel::new(config).build_chain().expect("chain");
        chain
            .analyze_with_tol(SolverChoice::Multigrid, 1e-10)
            .expect("analysis")
            .ber
    };
    let quiet = ber_of(0.007);
    let loud = ber_of(0.07);
    assert!(
        loud > quiet * 1e3 || quiet == 0.0,
        "10x noise should blow up the BER: {quiet:.2e} -> {loud:.2e}"
    );
    assert!(
        loud > 1e-12 && loud < 1e-3,
        "loud point in a plausible band: {loud:.2e}"
    );
}
