//! Property-based tests over randomized configurations and noise specs.

use proptest::prelude::*;
use stochcdr::{CdrConfig, CdrModel, FilterKind};
use stochcdr_linalg::vecops;
use stochcdr_markov::lumping::{aggregate, disaggregate, Partition};
use stochcdr_markov::stationary::{GthSolver, StationarySolver};
use stochcdr_noise::discretize::{discretize_sigma, DiscreteDist};
use stochcdr_noise::dist::Gaussian;

/// Strategy over small but varied CDR configurations.
fn config_strategy() -> impl Strategy<Value = CdrConfig> {
    (
        2usize..=4,                               // grid refinement
        2usize..=6,                               // counter length
        0usize..=2,                               // dead zone bins
        0.02f64..0.15,                            // sigma_w
        1e-3f64..8e-3,                            // drift mean
        8e-3f64..4e-2,                            // drift deviation
        prop::sample::select(vec![2usize, 3, 5]), // data run bound
        prop::sample::select(vec![
            FilterKind::OverflowCounter,
            FilterKind::ConsecutiveDetector,
        ]),
    )
        .prop_filter_map("config must validate", |(r, c, dz, s, dm, dd, run, fk)| {
            CdrConfig::builder()
                .phases(8)
                .grid_refinement(r)
                .counter_len(c)
                .filter_kind(fk)
                .dead_zone_bins(dz)
                .data(stochcdr_noise::sonet::DataSpec::new(0.5, run).ok()?)
                .white_sigma_ui(s)
                .drift(dm, dd)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated model yields a valid stochastic matrix whose
    /// stationary distribution exists and has physical BER.
    #[test]
    fn random_configs_build_valid_chains(config in config_strategy()) {
        let chain = CdrModel::new(config).build_chain().expect("chain builds");
        // Row sums are exactly one (validated) and wrap probabilities are
        // probabilities.
        for s in chain.tpm().matrix().row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-12);
        }
        for &w in chain.wrap_prob() {
            prop_assert!((0.0..=1.0).contains(&w));
        }
        let eta = GthSolver::new().solve(chain.tpm(), None).expect("stationary").distribution;
        prop_assert!((vecops::sum(&eta) - 1.0).abs() < 1e-9);
        prop_assert!(vecops::is_nonnegative(&eta));
        let a = chain.analysis_from_stationary(
            eta, 1, 0.0, std::time::Duration::ZERO, "gth");
        prop_assert!(a.ber >= 0.0 && a.ber <= 1.0);
        prop_assert!((a.phi_density.total_mass() - 1.0).abs() < 1e-9);
    }

    /// The fast and network construction paths agree on random configs.
    #[test]
    fn construction_paths_agree(config in config_strategy()) {
        let model = CdrModel::new(config);
        let fast = model.build_chain().expect("fast");
        let net = model.build_chain_via_network().expect("network");
        prop_assert_eq!(fast.tpm().nnz(), net.tpm().nnz());
        let mut max_diff = 0.0f64;
        for (r, c, v) in fast.tpm().matrix().iter() {
            max_diff = max_diff.max((v - net.tpm().matrix().get(r, c)).abs());
        }
        prop_assert!(max_diff < 1e-12, "paths differ by {}", max_diff);
    }

    /// Gaussian discretization preserves total mass and the first two
    /// moments across parameter ranges.
    #[test]
    fn discretization_preserves_moments(
        sigma in 0.005f64..0.2,
        bins_pow in 6u32..10,
    ) {
        let delta = 1.0 / f64::from(2u32.pow(bins_pow));
        let g = Gaussian::new(0.0, sigma);
        let d = discretize_sigma(&g, delta, 8.0);
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!((d.mean_offset() * delta).abs() < delta);
        // Variance within 15% once there are a few bins per sigma, always
        // bounded by the truncated-support worst case otherwise.
        if sigma / delta > 3.0 {
            let v = d.variance_offset() * delta * delta;
            prop_assert!((v / (sigma * sigma) - 1.0).abs() < 0.15,
                "var {} vs {}", v, sigma * sigma);
        }
    }

    /// Convolution of discrete distributions adds means and variances.
    #[test]
    fn convolution_is_additive(
        a_off in -10i32..10, a_p in 0.05f64..0.95,
        b_off in -10i32..10, b_p in 0.05f64..0.95,
    ) {
        let a = DiscreteDist::two_point(a_off, a_p, a_off + 3).expect("a");
        let b = DiscreteDist::two_point(b_off, b_p, b_off + 5).expect("b");
        let c = a.convolve(&b);
        prop_assert!((c.mean_offset() - a.mean_offset() - b.mean_offset()).abs() < 1e-12);
        prop_assert!(
            (c.variance_offset() - a.variance_offset() - b.variance_offset()).abs() < 1e-10
        );
        prop_assert!((c.total_mass() - 1.0).abs() < 1e-12);
    }

    /// Aggregation conserves probability mass for any partition and any
    /// weight vector; disaggregation inverts it on the block level.
    #[test]
    fn aggregation_mass_conservation(
        labels in prop::collection::vec(0usize..5, 10..40),
        seed in 0u64..1000,
    ) {
        // Normalize labels to a contiguous range.
        let mut sorted: Vec<usize> = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let relabeled: Vec<usize> = labels
            .iter()
            .map(|l| sorted.binary_search(l).expect("label present"))
            .collect();
        let part = Partition::from_labels(relabeled).expect("partition");
        // Pseudo-random distribution.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut x: Vec<f64> = (0..part.n())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 + 1.0
            })
            .collect();
        vecops::normalize_l1(&mut x);
        let coarse = aggregate(&part, &x);
        prop_assert!((vecops::sum(&coarse) - 1.0).abs() < 1e-12);
        // Disaggregating with x as weights reproduces x exactly.
        let back = disaggregate(&part, &coarse, &x);
        prop_assert!(vecops::dist1(&back, &x) < 1e-12);
    }
}
