//! Cross-crate integration tests for the `stochcdr` workspace.
//!
//! The test files in `tests/` exercise whole pipelines across crates:
//! model assembly (`stochcdr-fsm` + `stochcdr-noise` + core), stationary
//! solvers (`stochcdr-markov` + `stochcdr-multigrid`), and the
//! paper-reproduction presets (`stochcdr-bench` parameters re-derived
//! here at reduced size).

/// Builds the small reference configuration shared by the integration
/// tests: 8 phases, 32-bin grid, counter 4.
pub fn small_config() -> stochcdr::CdrConfig {
    stochcdr::CdrConfig::builder()
        .phases(8)
        .grid_refinement(4)
        .counter_len(4)
        .white_sigma_ui(0.06)
        .drift(4e-3, 1.6e-2)
        .build()
        .expect("reference config is valid")
}
