//! Loop-filter design space exploration.
//!
//! The paper closes with: "there is an optimal counter length for given
//! levels of noise, the computation of which is enabled by the accurate
//! and efficient analysis method described in the paper." This example is
//! that workflow, automated: sweep the counter length *and* the
//! phase-detector dead zone for a fixed jitter environment, and report the
//! design with the best BER (with the cycle-slip rate as a secondary
//! check).
//!
//! ```sh
//! cargo run --release -p stochcdr-examples --bin loop_filter_design
//! ```

use stochcdr::cycle_slip::mean_time_between_slips;
use stochcdr::{CdrConfig, CdrModel, SolverChoice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The jitter environment the receiver must survive (fixed).
    let sigma_w = 0.05;
    let (drift_mean, drift_dev) = (2e-3, 8e-3);

    println!("loop-filter design sweep at sigma(n_w) = {sigma_w} UI, drift {drift_mean} UI/sym");
    println!(
        "\n{:<10} {:<10} {:>12} {:>14} {:>8}",
        "counter", "dead zone", "BER", "MTBS (sym)", "cycles"
    );

    let mut best: Option<(usize, usize, f64)> = None;
    for counter_len in [4usize, 8, 16] {
        for dead_zone in [0usize, 4, 8] {
            let config = CdrConfig::builder()
                .phases(8)
                .grid_refinement(16)
                .counter_len(counter_len)
                .dead_zone_bins(dead_zone)
                .white_sigma_ui(sigma_w)
                .drift(drift_mean, drift_dev)
                .build()?;
            let chain = CdrModel::new(config).build_chain()?;
            let a = chain.analyze(SolverChoice::Multigrid)?;
            let mtbs = mean_time_between_slips(&chain, &a.stationary)?;
            println!(
                "{:<10} {:<10} {:>12.3e} {:>14.3e} {:>8}",
                counter_len, dead_zone, a.ber, mtbs, a.iterations
            );
            if best.is_none() || a.ber < best.unwrap().2 {
                best = Some((counter_len, dead_zone, a.ber));
            }
        }
    }

    let (c, d, ber) = best.expect("at least one design evaluated");
    println!("\nrecommended loop filter: counter length {c}, dead zone {d} bins (BER {ber:.2e})");
    println!(
        "each design point above would need ~{:.0e} Monte-Carlo symbols to verify directly",
        stochcdr::monte_carlo::McResult::required_symbols(ber, 0.1)
    );
    Ok(())
}
