//! Shared helpers for the `stochcdr` example binaries.
//!
//! The binaries in this package are end-to-end walkthroughs of the public
//! API on designer-facing scenarios:
//!
//! * `quickstart` — build a model, solve it, read BER and densities,
//! * `loop_filter_design` — choose a counter length / dead zone for a
//!   jitter spec (the paper's Figure-5 workflow, automated),
//! * `jitter_tolerance` — find the maximum tolerable interference-jitter
//!   amplitude at a BER target (a jitter-tolerance mask point),
//! * `slip_budget` — cycle-slip rate versus frequency offset for
//!   plesiochronous operation.

use stochcdr::{CdrAnalysis, CdrChain};

/// Prints a compact one-line summary of an analysis, shared by the
/// examples.
pub fn summarize(label: &str, chain: &CdrChain, a: &CdrAnalysis) {
    println!(
        "{label:<24} states={:<7} BER={:<10.3e} mean(phi)={:<+8.4} std(phi)={:<8.4} \
         cycles={:<4} solve={:.3}s",
        chain.state_count(),
        a.ber,
        a.phi_density.mean_ui(),
        a.phi_density.std_ui(),
        a.iterations,
        a.solve_time.as_secs_f64(),
    );
}
