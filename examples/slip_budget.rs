//! Cycle-slip budget versus frequency offset.
//!
//! In plesiochronous operation the transmit and receive clocks differ by a
//! bounded frequency offset (±20 ppm Stratum-3, worse before lock). Each
//! ppm of offset is a deterministic phase drift the loop must cancel;
//! past a critical offset the loop slips cycles at a rate that dominates
//! the error budget. This example tabulates the mean time between slips
//! and the BER across frequency offsets — a link-budget table that would
//! be unmeasurable by simulation at the quiet end.
//!
//! ```sh
//! cargo run --release -p stochcdr-examples --bin slip_budget
//! ```

use stochcdr::cycle_slip::mean_time_between_slips;
use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_examples::summarize;
use stochcdr_noise::jitter::{DriftJitterSpec, DriftShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cycle-slip budget vs frequency offset (counter 8, sigma_nw 0.05 UI)\n");
    println!(
        "{:<12} {:>14} {:>12} {:>16}",
        "offset", "MTBS (symbols)", "BER", "MTBS @ 2.5Gb/s"
    );

    for ppm in [500.0, 2_000.0, 8_000.0, 16_000.0, 24_000.0] {
        let drift = DriftJitterSpec::from_frequency_offset_ppm(ppm, 8e-3, DriftShape::Triangular);
        let config = CdrConfig::builder()
            .phases(8)
            .grid_refinement(16)
            .counter_len(8)
            .white_sigma_ui(0.05)
            .drift_spec(drift)
            .build()?;
        let chain = CdrModel::new(config).build_chain()?;
        let a = chain.analyze(SolverChoice::Multigrid)?;
        let mtbs = mean_time_between_slips(&chain, &a.stationary)?;
        let seconds = mtbs / 2.5e9;
        let human = if seconds < 1.0 {
            format!("{:.2e} s", seconds)
        } else if seconds < 3.6e3 {
            format!("{seconds:.1} s")
        } else if seconds < 3.2e7 {
            format!("{:.1} hours", seconds / 3.6e3)
        } else {
            format!("{:.1e} years", seconds / 3.156e7)
        };
        println!(
            "{:<12} {:>14.3e} {:>12.3e} {:>16}",
            format!("{ppm} ppm"),
            mtbs,
            a.ber,
            human
        );
        if ppm == 500.0 {
            summarize("  (detail at 500 ppm)", &chain, &a);
        }
    }

    println!(
        "\nreading: the slip rate collapses once the per-symbol drift approaches the \
         loop's maximum correction rate — the designer's frequency-offset budget."
    );
    Ok(())
}
