//! Jitter-tolerance point: the largest sinusoidal interference the loop
//! absorbs while meeting a BER target.
//!
//! SONET/SDH receivers are specified against jitter-tolerance masks. The
//! paper notes its framework covers this: "one can even mimic
//! deterministic sinusoidally varying jitter by assigning the amplitude
//! distribution of n_r appropriately" — the amplitude distribution of a
//! sinusoid is the arcsine law, available as
//! [`stochcdr_noise::dist::SinusoidalJitter`]. This example bisects on the
//! interference amplitude to find the tolerance point at a BER target.
//!
//! ```sh
//! cargo run --release -p stochcdr-examples --bin jitter_tolerance
//! ```

use stochcdr::{CdrConfig, CdrModel, SolverChoice};
use stochcdr_noise::jitter::{DriftJitterSpec, DriftShape};

const BER_TARGET: f64 = 1e-10;

fn ber_at(amplitude_ui: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let config = CdrConfig::builder()
        .phases(8)
        .grid_refinement(16)
        .counter_len(8)
        .white_sigma_ui(0.04)
        .drift_spec(DriftJitterSpec::new(
            5e-4,
            amplitude_ui,
            DriftShape::Sinusoidal,
        ))
        .build()?;
    let chain = CdrModel::new(config).build_chain()?;
    Ok(chain.analyze(SolverChoice::Multigrid)?.ber)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("jitter tolerance at BER target {BER_TARGET:.0e} (per-symbol sinusoidal n_r)\n");
    println!("{:<24} {:>12}", "amplitude (UI/symbol)", "BER");

    // Coarse sweep to bracket the tolerance point.
    let mut lo = 4e-3; // must resolve the 1/128-UI grid
    let mut hi = lo;
    for k in 0..10 {
        let amp = 4e-3 * 1.5f64.powi(k);
        let ber = ber_at(amp)?;
        println!("{amp:<24.4e} {ber:>12.3e}");
        if ber < BER_TARGET {
            lo = amp;
        } else {
            hi = amp;
            break;
        }
    }
    if hi <= lo {
        println!("\ntolerance exceeds the swept range; loop absorbs all tested amplitudes");
        return Ok(());
    }

    // Bisect to ~5% on the amplitude.
    for _ in 0..6 {
        let mid = (lo * hi).sqrt();
        let ber = ber_at(mid)?;
        println!("{mid:<24.4e} {ber:>12.3e}  (bisect)");
        if ber < BER_TARGET {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    println!(
        "\njitter tolerance point: ~{:.3e} UI/symbol sinusoidal interference at BER {BER_TARGET:.0e}",
        (lo * hi).sqrt()
    );
    Ok(())
}
