//! Quickstart: model a phase-picking CDR, solve for its stationary
//! behavior, and read out BER and densities.
//!
//! ```sh
//! cargo run --release -p stochcdr-examples --bin quickstart
//! ```

use stochcdr::{report, CdrConfig, CdrModel, SolverChoice};
use stochcdr_examples::summarize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the design: a 8-phase VCO with a divide-by-16 grid
    //    refinement, an 8-state up/down counter loop filter, and the
    //    stochastic environment (data statistics + two jitter sources).
    let config = CdrConfig::builder()
        .phases(8) // phase mux step G = UI/8
        .grid_refinement(16) // 128 phase-error bins per UI
        .counter_len(8)
        .white_sigma_ui(0.05) // eye-opening jitter n_w
        .drift(2e-3, 8e-3) // n_r: 2000 ppm offset + bounded deviation
        .build()?;

    // 2. Assemble the Markov chain (the paper's Figure-2 network, with
    //    n_w marginalized analytically).
    let model = CdrModel::new(config);
    let chain = model.build_chain()?;
    println!(
        "chain: {} states, {} transitions, built in {:?}",
        chain.state_count(),
        chain.nnz(),
        chain.form_time()
    );

    // 3. Solve for the stationary distribution with the multigrid solver
    //    and derive the performance measures.
    let analysis = chain.analyze(SolverChoice::Multigrid)?;
    summarize("quickstart", &chain, &analysis);

    // 4. The BER would take ~4e14 Monte-Carlo symbols to measure; the
    //    analysis resolved it in the solve time printed above.
    println!("\n{}", report::figure_panel(&chain, &analysis));

    // 5. Cycle slips: mean time between slips under stationary operation.
    let mtbs = stochcdr::cycle_slip::mean_time_between_slips(&chain, &analysis.stationary)?;
    println!("mean time between cycle slips: {mtbs:.3e} symbols");
    Ok(())
}
