//! Kronecker product-form representation — solving a composed chain
//! without materializing its transition matrix.
//!
//! The paper's outlook: "For solving more complex models, we are looking
//! into using hierarchical generalized Kronecker-algebra ...
//! representations." For a system of *independent* components the joint
//! TPM is the Kronecker product of the component TPMs; this example builds
//! a bank of eight independent CDR-like phase processes, represents the
//! 16.7-million-state joint chain as a [`KroneckerOp`] with a few hundred
//! stored entries, and computes joint stationary statistics matrix-free.
//!
//! ```sh
//! cargo run --release -p stochcdr-examples --bin kronecker_demo
//! ```

use stochcdr_fsm::KroneckerOp;
use stochcdr_linalg::{CooMatrix, CsrMatrix};
use stochcdr_markov::operator::stationary_power;
use stochcdr_markov::stationary::{GthSolver, StationarySolver};
use stochcdr_markov::StochasticMatrix;

/// A coarse 8-bin phase-wander chain (random walk with recentring drift),
/// the per-lane component of the bank.
fn lane_chain(bias: f64) -> CsrMatrix {
    let m = 8;
    let mut coo = CooMatrix::new(m, m);
    for i in 0..m {
        // Pull toward the center bin with strength `bias`.
        let center = (m / 2) as f64;
        let pull = (center - i as f64) / center * bias;
        let up = (0.3 + pull).clamp(0.05, 0.95);
        let down = (0.3 - pull).clamp(0.05, 0.95);
        let stay = 1.0 - up - down;
        coo.push(i, (i + 1) % m, up);
        coo.push(i, (i + m - 1) % m, down);
        coo.push(i, i, stay);
    }
    coo.to_csr()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lanes = 8usize;
    let factors: Vec<CsrMatrix> = (0..lanes)
        .map(|k| lane_chain(0.1 + 0.02 * k as f64))
        .collect();
    let op = KroneckerOp::new(factors.clone());
    println!(
        "joint chain: {} states; product form stores {} entries vs 8^8 * 3^8 (infeasible) materialized",
        op.dim(),
        op.compact_nnz()
    );

    // Matrix-free stationary solve on the product form would need the full
    // 16.7M-entry vector; demonstrate on the first four lanes (4096 states)
    // and verify against the product of per-lane stationaries.
    // `KroneckerOp` implements `TransitionOp`, so the solver consumes the
    // product form directly — no adapter and no materialization.
    let small = KroneckerOp::new(factors[..4].to_vec());
    let joint = stationary_power(&small, None, 1e-12, 200_000)?;
    println!(
        "matrix-free power iteration: {} states, {} iterations",
        small.dim(),
        joint.iterations()
    );

    // Independence check: the joint stationary factorizes.
    let mut product = vec![1.0f64; small.dim()];
    let mut stride = small.dim();
    for f in &factors[..4] {
        let eta = GthSolver::new()
            .solve(&StochasticMatrix::new(f.clone())?, None)?
            .distribution;
        stride /= f.rows();
        for (i, p) in product.iter_mut().enumerate() {
            *p *= eta[(i / stride) % f.rows()];
        }
    }
    let err: f64 = joint
        .distribution
        .iter()
        .zip(&product)
        .map(|(a, b)| (a - b).abs())
        .sum();
    println!("L1 deviation from the product of per-lane stationaries: {err:.2e}");
    assert!(err < 1e-8, "product-form result must factorize");
    println!("product-form representation verified.");
    Ok(())
}
